//! Galois automorphisms `σ_k : x ↦ x^k` of `Z_q[x]/(x^N + 1)`.
//!
//! `Rotate` and `Conjugate` (Table 2 of the MAD paper) are implemented as
//! key switching after an automorphism. The automorphism itself is a pure
//! data permutation (plus sign flips in coefficient representation) — the
//! paper charges it zero arithmetic operations (Table 4, `Automorph`) but
//! a full limb read+write of DRAM traffic.
//!
//! In coefficient representation, `x^i ↦ ±x^{ik mod N}` with a sign flip
//! whenever `⌊ik / N⌋` is odd. In evaluation representation the map is a
//! permutation of the stored evaluation points (the point `ψ^e` moves to
//! `ψ^{ke mod 2N}`), which we precompute per `k` using the NTT exponent
//! bookkeeping.

use crate::ntt::NttTable;
use std::fmt;

/// A precomputed automorphism `σ_k` for a fixed ring degree.
#[derive(Clone)]
pub struct Automorphism {
    k: u64,
    n: usize,
    /// Coefficient-rep mapping: output index and sign for each input index.
    coeff_target: Vec<u32>,
    coeff_negate: Vec<bool>,
    /// Evaluation-rep permutation: `eval_source[out] = in` position.
    eval_source: Vec<u32>,
}

impl fmt::Debug for Automorphism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Automorphism")
            .field("k", &self.k)
            .field("n", &self.n)
            .finish()
    }
}

impl Automorphism {
    /// Precomputes `σ_k` for the ring of `table` (all limbs of a basis share
    /// the same permutation; any limb's table works).
    ///
    /// # Panics
    ///
    /// Panics if `k` is even or `k ≥ 2N` (such `k` are not Galois elements
    /// of the power-of-two cyclotomic).
    pub fn new(k: u64, table: &NttTable) -> Self {
        let n = table.size();
        let two_n = 2 * n as u64;
        assert!(
            k % 2 == 1 && k < two_n,
            "Galois element must be odd and < 2N"
        );
        let mut coeff_target = vec![0u32; n];
        let mut coeff_negate = vec![false; n];
        for i in 0..n {
            let e = (i as u64 * k) % two_n;
            if e < n as u64 {
                coeff_target[i] = e as u32;
                coeff_negate[i] = false;
            } else {
                coeff_target[i] = (e - n as u64) as u32;
                coeff_negate[i] = true;
            }
        }
        let mut eval_source = vec![0u32; n];
        for pos in 0..n {
            // Output position `pos` holds the evaluation at ψ^e; σ_k(p) at
            // ψ^e equals p(ψ^{ke mod 2N}), i.e. it reads from the input
            // position storing exponent k·e.
            let e = table.exponent_at(pos);
            let src = table.position_of_exponent((e * k) % two_n);
            eval_source[pos] = src as u32;
        }
        Self {
            k,
            n,
            coeff_target,
            coeff_negate,
            eval_source,
        }
    }

    /// The Galois element `k`.
    #[inline]
    pub fn galois_element(&self) -> u64 {
        self.k
    }

    /// Applies `σ_k` to one limb in coefficient representation.
    ///
    /// # Panics
    ///
    /// Panics if lengths mismatch the ring degree.
    pub fn apply_coeff(&self, src: &[u64], dst: &mut [u64], q: u64) {
        assert_eq!(src.len(), self.n);
        assert_eq!(dst.len(), self.n);
        for i in 0..self.n {
            let t = self.coeff_target[i] as usize;
            dst[t] = if self.coeff_negate[i] && src[i] != 0 {
                q - src[i]
            } else {
                src[i]
            };
        }
    }

    /// Applies `σ_k` to one limb in evaluation representation (a pure
    /// permutation).
    ///
    /// # Panics
    ///
    /// Panics if lengths mismatch the ring degree.
    pub fn apply_eval(&self, src: &[u64], dst: &mut [u64]) {
        assert_eq!(src.len(), self.n);
        assert_eq!(dst.len(), self.n);
        for pos in 0..self.n {
            dst[pos] = src[self.eval_source[pos] as usize];
        }
    }
}

/// The Galois element that rotates CKKS slots left by `steps` positions:
/// `5^steps mod 2N` (negative steps rotate right).
///
/// # Example
///
/// ```
/// use fhe_math::automorph::rotation_galois_element;
/// assert_eq!(rotation_galois_element(0, 16), 1);
/// assert_eq!(rotation_galois_element(1, 16), 5);
/// assert_eq!(rotation_galois_element(2, 16), 25);
/// ```
pub fn rotation_galois_element(steps: i64, n: usize) -> u64 {
    let two_n = 2 * n as u64;
    let slots = (n / 2) as i64;
    let s = steps.rem_euclid(slots) as u64;
    let mut k = 1u64;
    for _ in 0..s {
        k = (k * 5) % two_n;
    }
    k
}

/// The Galois element of complex conjugation: `2N − 1` (i.e. `x ↦ x^{-1}`).
pub fn conjugation_galois_element(n: usize) -> u64 {
    2 * n as u64 - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prime::generate_ntt_primes;

    fn table(n: usize) -> NttTable {
        NttTable::new(generate_ntt_primes(1, 30, n)[0], n).unwrap()
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_galois_element_rejected() {
        let t = table(16);
        let _ = Automorphism::new(4, &t);
    }

    #[test]
    fn identity_automorphism() {
        let t = table(16);
        let auto = Automorphism::new(1, &t);
        let src: Vec<u64> = (0..16).collect();
        let mut dst = vec![0u64; 16];
        auto.apply_coeff(&src, &mut dst, t.modulus().value());
        assert_eq!(dst, src);
        auto.apply_eval(&src, &mut dst);
        assert_eq!(dst, src);
    }

    #[test]
    fn coeff_automorphism_matches_polynomial_substitution() {
        // σ_k(p)(x) = p(x^k): verify on the monomial basis via evaluation.
        let n = 16;
        let t = table(n);
        let q = *t.modulus();
        for k in [3u64, 5, 31] {
            let auto = Automorphism::new(k, &t);
            let coeffs: Vec<u64> = (1..=n as u64).collect();
            let mut permuted = vec![0u64; n];
            auto.apply_coeff(&coeffs, &mut permuted, q.value());
            // Evaluate both at a random point y with ψ odd power ordering:
            // p(y^k) must equal σ_k(p)(y) for y any primitive 2N-th root power.
            let y = q.pow(t.psi(), 3); // ψ^3, a valid evaluation point
            let eval = |c: &[u64], point: u64| {
                let mut acc = 0u64;
                for &ci in c.iter().rev() {
                    acc = q.add(q.mul(acc, point), ci);
                }
                acc
            };
            let yk = q.pow(y, k);
            assert_eq!(eval(&permuted, y), eval(&coeffs, yk), "k={k}");
        }
    }

    #[test]
    fn eval_automorphism_commutes_with_ntt() {
        let n = 64;
        let t = table(n);
        let q = *t.modulus();
        for k in [5u64, 25, 127] {
            let auto = Automorphism::new(k, &t);
            let coeffs: Vec<u64> = (0..n as u64).map(|i| (i * 13 + 7) % q.value()).collect();
            // Path A: automorph in coeff rep, then NTT.
            let mut a = vec![0u64; n];
            auto.apply_coeff(&coeffs, &mut a, q.value());
            t.forward(&mut a);
            // Path B: NTT, then automorph in eval rep.
            let mut b = coeffs.clone();
            t.forward(&mut b);
            let mut b_out = vec![0u64; n];
            auto.apply_eval(&b, &mut b_out);
            assert_eq!(a, b_out, "k={k}");
        }
    }

    #[test]
    fn rotation_elements_form_cyclic_group() {
        let n = 32;
        let slots = n / 2;
        let mut seen = std::collections::HashSet::new();
        for s in 0..slots as i64 {
            seen.insert(rotation_galois_element(s, n));
        }
        assert_eq!(seen.len(), slots, "5^s must generate n/2 distinct elements");
        assert_eq!(
            rotation_galois_element(-1, n),
            rotation_galois_element(slots as i64 - 1, n)
        );
    }

    #[test]
    fn conjugation_is_involution() {
        let n = 16;
        let t = table(n);
        let q = *t.modulus();
        let auto = Automorphism::new(conjugation_galois_element(n), &t);
        let src: Vec<u64> = (0..n as u64).map(|i| (i * 3 + 2) % q.value()).collect();
        let mut once = vec![0u64; n];
        let mut twice = vec![0u64; n];
        auto.apply_coeff(&src, &mut once, q.value());
        auto.apply_coeff(&once, &mut twice, q.value());
        assert_eq!(twice, src);
    }
}
