//! Arithmetic in 64-bit prime fields.
//!
//! A [`Modulus`] bundles a prime `q < 2^62` with precomputed Barrett
//! constants so that the hot kernels (NTT butterflies, pointwise products,
//! basis-conversion inner products) never perform a hardware division.
//!
//! The MAD paper counts compute in units of modular multiplications and
//! additions (Section 4.1); these are exactly the operations exposed here.

use std::fmt;

/// Maximum supported modulus: primes must fit in 62 bits so that lazy
/// sums of up to four residues never overflow `u64`.
pub const MAX_MODULUS_BITS: u32 = 62;

/// A word-sized prime modulus with precomputed Barrett reduction constants.
///
/// # Example
///
/// ```
/// use fhe_math::Modulus;
/// let q = Modulus::new(65537).unwrap();
/// assert_eq!(q.mul(65536, 65536), 1); // (-1)·(-1) = 1 mod 65537
/// assert_eq!(q.pow(3, 65536), q.inv(3).unwrap().wrapping_mul(0).wrapping_add(q.pow(3, 65536)));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Modulus {
    value: u64,
    /// ⌊2^128 / q⌋ split into two 64-bit words (high, low).
    barrett_hi: u64,
    barrett_lo: u64,
}

/// Error returned when constructing a [`Modulus`] from an unsupported value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidModulusError(pub u64);

impl fmt::Display for InvalidModulusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "modulus {} is zero, one, or wider than 62 bits", self.0)
    }
}

impl std::error::Error for InvalidModulusError {}

impl fmt::Debug for Modulus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Modulus({})", self.value)
    }
}

impl fmt::Display for Modulus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.value)
    }
}

impl Modulus {
    /// Creates a modulus from `value`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidModulusError`] if `value < 2` or `value >= 2^62`.
    /// The value is *not* required to be prime; primality is only needed by
    /// the callers that use [`Modulus::inv`] on arbitrary elements.
    pub fn new(value: u64) -> Result<Self, InvalidModulusError> {
        if value < 2 || value >> MAX_MODULUS_BITS != 0 {
            return Err(InvalidModulusError(value));
        }
        // Compute ⌊2^128 / value⌋ via 128-bit long division in two halves.
        let hi = u64::MAX / value; // ⌊(2^64 - 1)/q⌋ approximates the high word
                                   // Exact: 2^128 / q = ((2^64 / q) << 64) + ((2^64 mod q) << 64) / q.
        let q128 = u128::MAX / value as u128; // ⌊(2^128 - 1)/q⌋ == ⌊2^128/q⌋ unless q | 2^128 (impossible for q>2 odd; for q=2^k handled below)
        let barrett = if value.is_power_of_two() {
            // 2^128 / 2^k = 2^(128-k); u128::MAX/q rounds down to 2^(128-k) - 1.
            q128 + 1
        } else {
            q128
        };
        let _ = hi;
        Ok(Self {
            value,
            barrett_hi: (barrett >> 64) as u64,
            barrett_lo: barrett as u64,
        })
    }

    /// The modulus value `q`.
    #[inline(always)]
    pub const fn value(&self) -> u64 {
        self.value
    }

    /// Number of significant bits in `q`.
    #[inline]
    pub const fn bits(&self) -> u32 {
        64 - self.value.leading_zeros()
    }

    /// Reduces an arbitrary 64-bit value modulo `q`.
    #[inline(always)]
    pub fn reduce(&self, x: u64) -> u64 {
        if x < self.value {
            x
        } else {
            x % self.value
        }
    }

    /// Reduces a 128-bit value modulo `q` using Barrett reduction.
    ///
    /// This is the workhorse of [`Modulus::mul`]; it is branch-light and
    /// division-free.
    #[inline(always)]
    pub fn reduce_u128(&self, x: u128) -> u64 {
        // q̂ = ⌊x · ⌊2^128/q⌋ / 2^128⌋, then r = x - q̂·q, with at most two
        // conditional subtractions.
        let xlo = x as u64;
        let xhi = (x >> 64) as u64;
        // tmp = ⌊(x * barrett) / 2^128⌋ where barrett = barrett_hi·2^64 + barrett_lo.
        let lo_lo = (xlo as u128 * self.barrett_lo as u128) >> 64;
        let hi_lo = xhi as u128 * self.barrett_lo as u128;
        let lo_hi = xlo as u128 * self.barrett_hi as u128;
        let mid = hi_lo + lo_hi + lo_lo;
        let q_hat = (xhi as u128 * self.barrett_hi as u128) + (mid >> 64);
        let mut r = (x.wrapping_sub(q_hat.wrapping_mul(self.value as u128))) as u64;
        while r >= self.value {
            r -= self.value;
        }
        r
    }

    /// Modular addition of two reduced residues.
    #[inline(always)]
    pub fn add(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.value && b < self.value);
        let s = a + b;
        if s >= self.value {
            s - self.value
        } else {
            s
        }
    }

    /// Modular subtraction of two reduced residues.
    #[inline(always)]
    pub fn sub(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.value && b < self.value);
        if a >= b {
            a - b
        } else {
            a + self.value - b
        }
    }

    /// Modular negation of a reduced residue.
    #[inline(always)]
    pub fn neg(&self, a: u64) -> u64 {
        debug_assert!(a < self.value);
        if a == 0 {
            0
        } else {
            self.value - a
        }
    }

    /// Modular multiplication of two reduced residues.
    #[inline(always)]
    pub fn mul(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.value && b < self.value);
        self.reduce_u128(a as u128 * b as u128)
    }

    /// Fused multiply-add: `a·b + c mod q`.
    #[inline(always)]
    pub fn mul_add(&self, a: u64, b: u64, c: u64) -> u64 {
        self.reduce_u128(a as u128 * b as u128 + c as u128)
    }

    /// Precomputes the Shoup representation `⌊b·2^64/q⌋` of a constant
    /// multiplicand `b`, for use with [`Modulus::mul_shoup`].
    #[inline]
    pub fn shoup(&self, b: u64) -> u64 {
        debug_assert!(b < self.value);
        (((b as u128) << 64) / self.value as u128) as u64
    }

    /// Multiplication by a constant with a precomputed Shoup factor.
    ///
    /// `b_shoup` must be `self.shoup(b)`. Roughly twice as fast as
    /// [`Modulus::mul`] in NTT butterflies because it avoids the 128-bit
    /// Barrett step.
    #[inline(always)]
    pub fn mul_shoup(&self, a: u64, b: u64, b_shoup: u64) -> u64 {
        debug_assert!(a < self.value);
        let q_hat = ((a as u128 * b_shoup as u128) >> 64) as u64;
        let r = (a.wrapping_mul(b)).wrapping_sub(q_hat.wrapping_mul(self.value));
        if r >= self.value {
            r - self.value
        } else {
            r
        }
    }

    /// Modular exponentiation `a^e mod q` by square-and-multiply.
    pub fn pow(&self, a: u64, mut e: u64) -> u64 {
        let mut base = self.reduce(a);
        let mut acc = 1u64;
        while e > 0 {
            if e & 1 == 1 {
                acc = self.mul(acc, base);
            }
            base = self.mul(base, base);
            e >>= 1;
        }
        acc
    }

    /// Modular inverse via the extended Euclidean algorithm.
    ///
    /// Returns `None` when `gcd(a, q) != 1` (in particular for `a == 0`).
    pub fn inv(&self, a: u64) -> Option<u64> {
        let a = self.reduce(a);
        if a == 0 {
            return None;
        }
        let (mut t, mut new_t) = (0i128, 1i128);
        let (mut r, mut new_r) = (self.value as i128, a as i128);
        while new_r != 0 {
            let quotient = r / new_r;
            (t, new_t) = (new_t, t - quotient * new_t);
            (r, new_r) = (new_r, r - quotient * new_r);
        }
        if r != 1 {
            return None;
        }
        if t < 0 {
            t += self.value as i128;
        }
        Some(t as u64)
    }

    /// Maps a signed integer into `[0, q)`.
    #[inline]
    pub fn from_i64(&self, x: i64) -> u64 {
        let r = (x % self.value as i64 + self.value as i64) as u64;
        self.reduce(r)
    }

    /// Maps a reduced residue to its centered representative in
    /// `(-q/2, q/2]`.
    #[inline]
    pub fn to_centered(&self, x: u64) -> i64 {
        debug_assert!(x < self.value);
        if x > self.value / 2 {
            x as i64 - self.value as i64
        } else {
            x as i64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_degenerate_values() {
        assert!(Modulus::new(0).is_err());
        assert!(Modulus::new(1).is_err());
        assert!(Modulus::new(1 << 62).is_err());
        assert!(Modulus::new(u64::MAX).is_err());
        assert!(Modulus::new(2).is_ok());
        assert!(Modulus::new((1 << 62) - 1).is_ok());
    }

    #[test]
    fn reduce_u128_matches_naive() {
        let q = Modulus::new(0x3fff_ffff_ffff_ffc5).unwrap(); // large 62-bit value
        let cases = [
            0u128,
            1,
            q.value() as u128,
            q.value() as u128 + 1,
            u128::MAX,
            u128::MAX / 2,
            0x1234_5678_9abc_def0_1122_3344_5566_7788,
        ];
        for &x in &cases {
            assert_eq!(q.reduce_u128(x) as u128, x % q.value() as u128, "x={x}");
        }
    }

    #[test]
    fn reduce_u128_power_of_two_modulus() {
        let q = Modulus::new(1 << 32).unwrap();
        assert_eq!(q.reduce_u128(u128::MAX), (u128::MAX % (1u128 << 32)) as u64);
        assert_eq!(q.reduce_u128((1u128 << 100) + 7), 7);
    }

    #[test]
    fn add_sub_neg_roundtrip() {
        let q = Modulus::new(97).unwrap();
        for a in 0..97u64 {
            for b in 0..97u64 {
                let s = q.add(a, b);
                assert_eq!(q.sub(s, b), a);
                assert_eq!(q.add(q.neg(a), a), 0);
            }
        }
    }

    #[test]
    fn shoup_matches_barrett() {
        let q = Modulus::new((1 << 50) - 27).unwrap();
        let b = 0x0003_dead_beef_1234 % q.value();
        let bs = q.shoup(b);
        for a in [0u64, 1, 42, q.value() - 1, q.value() / 2] {
            assert_eq!(q.mul_shoup(a, b, bs), q.mul(a, b));
        }
    }

    #[test]
    fn pow_and_inv_agree_fermat() {
        let q = Modulus::new(65537).unwrap();
        for a in [1u64, 2, 3, 65535, 12345] {
            let inv = q.inv(a).unwrap();
            assert_eq!(q.mul(a, inv), 1);
            assert_eq!(inv, q.pow(a, q.value() - 2));
        }
        assert_eq!(q.inv(0), None);
    }

    #[test]
    fn inv_detects_non_coprime() {
        let q = Modulus::new(91).unwrap(); // 7 * 13, not prime
        assert_eq!(q.inv(7), None);
        assert_eq!(q.inv(13), None);
        let i = q.inv(2).unwrap();
        assert_eq!(q.mul(2, i), 1);
    }

    #[test]
    fn centered_representatives() {
        let q = Modulus::new(17).unwrap();
        assert_eq!(q.to_centered(0), 0);
        assert_eq!(q.to_centered(8), 8);
        assert_eq!(q.to_centered(9), -8);
        assert_eq!(q.to_centered(16), -1);
        assert_eq!(q.from_i64(-1), 16);
        assert_eq!(q.from_i64(-17), 0);
        assert_eq!(
            q.from_i64(i64::MIN + 1),
            q.from_i64((i64::MIN + 1) % 17 + 17)
        );
    }

    #[test]
    fn mul_add_matches_separate_ops() {
        let q = Modulus::new((1 << 45) - 229).unwrap();
        let (a, b, c) = (123456789, 987654321, 555555555);
        assert_eq!(q.mul_add(a, b, c), q.add(q.mul(a, b), c));
    }
}
