//! A minimal arbitrary-precision unsigned integer.
//!
//! CKKS moduli `Q = ∏ q_i` span hundreds to thousands of bits, far beyond
//! `u128`. Decoding (and the exact-CRT tests for the fast basis conversion)
//! needs just enough big-integer arithmetic to reconstruct a coefficient
//! from its RNS residues and center it modulo `Q`. We implement that subset
//! in-house rather than adding a dependency: little-endian `u64` limbs with
//! add, small-multiply, compare, subtract, shift and float conversion.

use std::cmp::Ordering;
use std::fmt;

/// Arbitrary-precision unsigned integer, little-endian 64-bit limbs.
///
/// The representation is normalized: no trailing zero limbs (the value 0 is
/// the empty limb vector).
#[derive(Clone, PartialEq, Eq, Default, Hash)]
pub struct UBig {
    limbs: Vec<u64>,
}

impl fmt::Debug for UBig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "UBig(≈2^{:.1})", self.bits_f64())
    }
}

impl From<u64> for UBig {
    fn from(x: u64) -> Self {
        let mut v = UBig { limbs: vec![x] };
        v.normalize();
        v
    }
}

impl From<u128> for UBig {
    fn from(x: u128) -> Self {
        let mut v = UBig {
            limbs: vec![x as u64, (x >> 64) as u64],
        };
        v.normalize();
        v
    }
}

impl UBig {
    /// The value zero.
    pub fn zero() -> Self {
        UBig::default()
    }

    /// The value one.
    pub fn one() -> Self {
        UBig::from(1u64)
    }

    /// True if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Bit length as a float (sufficient for logging and noise estimates).
    pub fn bits_f64(&self) -> f64 {
        match self.limbs.last() {
            None => 0.0,
            Some(&top) => {
                (self.limbs.len() as f64 - 1.0) * 64.0 + (64 - top.leading_zeros()) as f64
                    - if top == 0 {
                        0.0
                    } else {
                        (top.leading_zeros() == 63) as i32 as f64 * 0.0
                    }
            }
        }
    }

    /// Exact bit length (position of the highest set bit plus one).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() - 1) * 64 + (64 - top.leading_zeros() as usize),
        }
    }

    /// In-place multiplication by a 64-bit value.
    pub fn mul_small(&mut self, m: u64) {
        if m == 0 {
            self.limbs.clear();
            return;
        }
        let mut carry = 0u128;
        for limb in &mut self.limbs {
            let prod = *limb as u128 * m as u128 + carry;
            *limb = prod as u64;
            carry = prod >> 64;
        }
        while carry != 0 {
            self.limbs.push(carry as u64);
            carry >>= 64;
        }
    }

    /// In-place addition of a 64-bit value.
    pub fn add_small(&mut self, a: u64) {
        let mut carry = a;
        for limb in &mut self.limbs {
            let (s, o) = limb.overflowing_add(carry);
            *limb = s;
            carry = o as u64;
            if carry == 0 {
                return;
            }
        }
        if carry != 0 {
            self.limbs.push(carry);
        }
    }

    /// In-place addition of another big integer.
    pub fn add_assign(&mut self, rhs: &UBig) {
        if self.limbs.len() < rhs.limbs.len() {
            self.limbs.resize(rhs.limbs.len(), 0);
        }
        let mut carry = 0u64;
        for (i, limb) in self.limbs.iter_mut().enumerate() {
            let r = rhs.limbs.get(i).copied().unwrap_or(0);
            let (s1, o1) = limb.overflowing_add(r);
            let (s2, o2) = s1.overflowing_add(carry);
            *limb = s2;
            carry = (o1 as u64) + (o2 as u64);
        }
        if carry != 0 {
            self.limbs.push(carry);
        }
    }

    /// In-place subtraction; `rhs` must not exceed `self`.
    ///
    /// # Panics
    ///
    /// Panics if `rhs > self`.
    pub fn sub_assign(&mut self, rhs: &UBig) {
        assert!(*self >= *rhs, "UBig underflow");
        let mut borrow = 0u64;
        for (i, limb) in self.limbs.iter_mut().enumerate() {
            let r = rhs.limbs.get(i).copied().unwrap_or(0);
            let (s1, o1) = limb.overflowing_sub(r);
            let (s2, o2) = s1.overflowing_sub(borrow);
            *limb = s2;
            borrow = (o1 as u64) + (o2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        self.normalize();
    }

    /// Remainder modulo a 64-bit value.
    pub fn rem_u64(&self, m: u64) -> u64 {
        assert!(m != 0, "division by zero");
        let mut rem = 0u128;
        for &limb in self.limbs.iter().rev() {
            rem = ((rem << 64) | limb as u128) % m as u128;
        }
        rem as u64
    }

    /// Product of a slice of 64-bit factors.
    pub fn product(factors: &[u64]) -> UBig {
        let mut acc = UBig::one();
        for &f in factors {
            acc.mul_small(f);
        }
        acc
    }

    /// Approximate conversion to `f64` (loses precision beyond 53 bits, as
    /// expected; used for decoding where the plaintext magnitude is small).
    pub fn to_f64(&self) -> f64 {
        let mut acc = 0.0f64;
        for &limb in self.limbs.iter().rev() {
            acc = acc * 1.8446744073709552e19 + limb as f64;
        }
        acc
    }

    /// Right shift by `sh` bits.
    pub fn shr(&self, sh: usize) -> UBig {
        let limb_shift = sh / 64;
        let bit_shift = sh % 64;
        if limb_shift >= self.limbs.len() {
            return UBig::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() - limb_shift);
        for i in limb_shift..self.limbs.len() {
            let mut v = self.limbs[i] >> bit_shift;
            if bit_shift > 0 {
                if let Some(&hi) = self.limbs.get(i + 1) {
                    v |= hi << (64 - bit_shift);
                }
            }
            out.push(v);
        }
        let mut r = UBig { limbs: out };
        r.normalize();
        r
    }
}

impl PartialOrd for UBig {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for UBig {
    fn cmp(&self, other: &Self) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

/// Signed magnitude view of a CRT-reconstructed coefficient: value in
/// `(-Q/2, Q/2]` represented as a sign and a [`UBig`] magnitude.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IBig {
    /// True when the value is negative.
    pub negative: bool,
    /// Absolute value.
    pub magnitude: UBig,
}

impl IBig {
    /// Approximate conversion to `f64`.
    pub fn to_f64(&self) -> f64 {
        let m = self.magnitude.to_f64();
        if self.negative {
            -m
        } else {
            m
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_value_roundtrips() {
        let mut x = UBig::from(41u64);
        x.add_small(1);
        assert_eq!(x, UBig::from(42u64));
        assert_eq!(x.rem_u64(5), 2);
        assert_eq!(x.to_f64(), 42.0);
        assert_eq!(x.bit_len(), 6);
    }

    #[test]
    fn mul_small_carries_across_limbs() {
        let mut x = UBig::from(u64::MAX);
        x.mul_small(u64::MAX);
        // (2^64 - 1)^2 = 2^128 - 2^65 + 1
        let expect = UBig::from((u64::MAX as u128) * (u64::MAX as u128));
        assert_eq!(x, expect);
        assert_eq!(x.bit_len(), 128);
    }

    #[test]
    fn add_assign_with_carry_chain() {
        let mut x = UBig::from(u128::MAX);
        x.add_assign(&UBig::one());
        assert_eq!(x.bit_len(), 129);
        assert_eq!(x.rem_u64(1 << 32), 0);
    }

    #[test]
    fn sub_assign_and_ordering() {
        let a = UBig::product(&[0xffff_ffff_ffff_fffe, 12345, 678901]);
        let b = UBig::product(&[0xffff_ffff_ffff_fffe, 12345]);
        assert!(a > b);
        let mut c = a.clone();
        c.sub_assign(&b);
        assert!(c < a);
        let mut back = c;
        back.add_assign(&b);
        assert_eq!(back, a);
    }

    #[test]
    #[should_panic(expected = "UBig underflow")]
    fn sub_underflow_panics() {
        let mut a = UBig::from(1u64);
        a.sub_assign(&UBig::from(2u64));
    }

    #[test]
    fn rem_matches_u128_arithmetic() {
        let val = 0x0123_4567_89ab_cdef_fedc_ba98_7654_3210u128;
        let x = UBig::from(val);
        for m in [3u64, 97, 65537, (1 << 61) - 1] {
            assert_eq!(x.rem_u64(m) as u128, val % m as u128);
        }
    }

    #[test]
    fn product_and_shift() {
        let p = UBig::product(&[1 << 20, 1 << 20, 1 << 20]);
        assert_eq!(p.bit_len(), 61);
        assert_eq!(p.shr(60), UBig::one());
        assert_eq!(p.shr(61), UBig::zero());
        assert_eq!(p.shr(0), p);
    }

    #[test]
    fn to_f64_large() {
        let p = UBig::product(&[1 << 30, 1 << 30]);
        assert_eq!(p.to_f64(), 2f64.powi(60));
    }
}
