//! Complex "special" FFT over the CKKS canonical embedding.
//!
//! CKKS encodes a vector of `n = N/2` complex slots into a real polynomial
//! of degree `N − 1` by inverting the canonical embedding restricted to the
//! orbit of the rotation group `⟨5⟩ ⊂ Z_{2N}^*`. The forward transform
//! evaluates a polynomial at the primitive `2N`-th roots `ζ^{5^j}`; the
//! inverse interpolates. Ordering the evaluation points by powers of 5 makes
//! slot rotation a cyclic shift — which is exactly why `Rotate` in the
//! scheme is the automorphism `x ↦ x^{5^r}`.
//!
//! The butterflies are the standard Cooley–Tukey network; only the twiddle
//! indexing (through the rotation group) differs from a textbook FFT.

use std::f64::consts::PI;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// A complex number with `f64` components (self-contained; avoids an
/// external num dependency).
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl fmt::Debug for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{:+}i", self.re, self.im)
    }
}

impl Complex {
    /// Constructs `re + im·i`.
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// The complex conjugate.
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Absolute value (modulus).
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// `e^{iθ}`.
    pub fn cis(theta: f64) -> Self {
        Self::new(theta.cos(), theta.sin())
    }

    /// Scales by a real factor.
    pub fn scale(self, s: f64) -> Self {
        Self::new(self.re * s, self.im * s)
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

/// Precomputed tables for the special FFT of slot count `n` (ring degree
/// `N = 2n`, cyclotomic index `M = 2N = 4n`).
#[derive(Clone)]
pub struct SpecialFft {
    slots: usize,
    m: usize,
    /// ζ^k = e^{2πik/M} for k in [0, M).
    zeta_pows: Vec<Complex>,
    /// 5^j mod M for j in [0, n).
    rot_group: Vec<usize>,
}

impl fmt::Debug for SpecialFft {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SpecialFft")
            .field("slots", &self.slots)
            .finish()
    }
}

fn bit_reverse_permute(vals: &mut [Complex]) {
    let n = vals.len();
    if n <= 1 {
        return;
    }
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if i < j {
            vals.swap(i, j);
        }
    }
}

impl SpecialFft {
    /// Builds tables for `slots` complex slots (`slots` a power of two ≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `slots` is not a power of two.
    pub fn new(slots: usize) -> Self {
        assert!(slots.is_power_of_two(), "slot count must be a power of two");
        let m = 4 * slots;
        let zeta_pows = (0..m)
            .map(|k| Complex::cis(2.0 * PI * k as f64 / m as f64))
            .collect();
        let mut rot_group = Vec::with_capacity(slots);
        let mut five_pow = 1usize;
        for _ in 0..slots {
            rot_group.push(five_pow);
            five_pow = (five_pow * 5) % m;
        }
        Self {
            slots,
            m,
            zeta_pows,
            rot_group,
        }
    }

    /// Number of complex slots `n`.
    #[inline]
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Forward transform: from "coefficient" half-vectors to slot values
    /// (decode direction). In place.
    ///
    /// # Panics
    ///
    /// Panics if `vals.len() != self.slots()`.
    pub fn forward(&self, vals: &mut [Complex]) {
        assert_eq!(vals.len(), self.slots);
        let n = self.slots;
        bit_reverse_permute(vals);
        let mut len = 2;
        while len <= n {
            self.forward_stage(vals, len);
            len <<= 1;
        }
    }

    /// Inverse transform: from slot values to "coefficient" half-vectors
    /// (encode direction). In place. Includes the `1/n` scaling.
    ///
    /// # Panics
    ///
    /// Panics if `vals.len() != self.slots()`.
    pub fn inverse(&self, vals: &mut [Complex]) {
        assert_eq!(vals.len(), self.slots);
        let n = self.slots;
        let mut len = n;
        while len >= 2 {
            self.inverse_stage(vals, len);
            len >>= 1;
        }
        bit_reverse_permute(vals);
        let scale = 1.0 / n as f64;
        for v in vals.iter_mut() {
            *v = v.scale(scale);
        }
    }

    /// Applies the bit-reversal permutation (the first step of
    /// [`SpecialFft::forward`] / last of [`SpecialFft::inverse`]), exposed
    /// so callers can decompose the transform into stages — CKKS
    /// bootstrapping groups butterfly stages into `fftIter` matrices.
    pub fn permute_bit_reverse(&self, vals: &mut [Complex]) {
        assert_eq!(vals.len(), self.slots);
        bit_reverse_permute(vals);
    }

    /// Applies one forward butterfly stage of width `len` (a power of two
    /// in `[2, n]`). The full forward transform is the bit-reversal
    /// permutation followed by stages `len = 2, 4, …, n`.
    pub fn forward_stage(&self, vals: &mut [Complex], len: usize) {
        assert_eq!(vals.len(), self.slots);
        assert!(len.is_power_of_two() && (2..=self.slots).contains(&len));
        let n = self.slots;
        let len_h = len >> 1;
        let len_q = len << 2;
        for base in (0..n).step_by(len) {
            for j in 0..len_h {
                let idx = (self.rot_group[j] % len_q) * (self.m / len_q);
                let u = vals[base + j];
                let v = vals[base + j + len_h] * self.zeta_pows[idx];
                vals[base + j] = u + v;
                vals[base + j + len_h] = u - v;
            }
        }
    }

    /// Applies one inverse butterfly stage of width `len`. The full inverse
    /// transform is stages `len = n, n/2, …, 2`, then the bit-reversal
    /// permutation, then scaling by `1/n` (not included here).
    pub fn inverse_stage(&self, vals: &mut [Complex], len: usize) {
        assert_eq!(vals.len(), self.slots);
        assert!(len.is_power_of_two() && (2..=self.slots).contains(&len));
        let n = self.slots;
        let len_h = len >> 1;
        let len_q = len << 2;
        for base in (0..n).step_by(len) {
            for j in 0..len_h {
                let idx = (len_q - (self.rot_group[j] % len_q)) * (self.m / len_q);
                let u = vals[base + j] + vals[base + j + len_h];
                let v = (vals[base + j] - vals[base + j + len_h]) * self.zeta_pows[idx];
                vals[base + j] = u;
                vals[base + j + len_h] = v;
            }
        }
    }

    /// Evaluates the embedding directly (O(n²)); reference implementation
    /// for tests. Input: the `n` complex "coefficients" `c_j` representing
    /// the real polynomial `Σ_j (Re c_j) x^j + Σ_j (Im c_j) x^{j+n}`.
    /// Output slot `k` is the polynomial evaluated at `ζ^{5^k}`.
    pub fn forward_reference(&self, coeffs: &[Complex]) -> Vec<Complex> {
        assert_eq!(coeffs.len(), self.slots);
        let n = self.slots;
        (0..n)
            .map(|k| {
                let point_exp = self.rot_group[k];
                let mut acc = Complex::default();
                for (j, &c) in coeffs.iter().enumerate() {
                    // x^j term with coefficient c (complex shorthand for the
                    // pair of real coefficients at j and j+n, since
                    // ζ^{n·5^k} = i for all k in the rotation group).
                    let w = self.zeta_pows[(point_exp * j) % self.m];
                    acc = acc + c * w;
                }
                acc
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn complex_field_axioms_spotcheck() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(-0.5, 3.0);
        assert!(close(a + b - b, a, 1e-12));
        assert!(close(a * b, b * a, 1e-12));
        assert!(close(a.conj().conj(), a, 1e-12));
        assert!(close(Complex::cis(PI), Complex::new(-1.0, 0.0), 1e-12));
        assert!(close(-a + a, Complex::default(), 1e-12));
    }

    #[test]
    fn roundtrip_identity() {
        for n in [1usize, 2, 8, 64, 512] {
            let fft = SpecialFft::new(n);
            let mut vals: Vec<Complex> = (0..n)
                .map(|i| Complex::new(i as f64 * 0.25 - 1.0, (i as f64).sin()))
                .collect();
            let orig = vals.clone();
            fft.inverse(&mut vals);
            fft.forward(&mut vals);
            for (a, b) in vals.iter().zip(&orig) {
                assert!(close(*a, *b, 1e-9), "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn forward_matches_reference_embedding() {
        let n = 16;
        let fft = SpecialFft::new(n);
        let coeffs: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.7).cos(), (i as f64 * 0.3).sin()))
            .collect();
        let expect = fft.forward_reference(&coeffs);
        let mut got = coeffs.clone();
        fft.forward(&mut got);
        for (a, b) in got.iter().zip(&expect) {
            assert!(close(*a, *b, 1e-9), "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn transform_is_linear() {
        let n = 32;
        let fft = SpecialFft::new(n);
        let a: Vec<Complex> = (0..n)
            .map(|i| Complex::new(i as f64, -(i as f64)))
            .collect();
        let b: Vec<Complex> = (0..n)
            .map(|i| Complex::new(1.0 / (i + 1) as f64, 2.0))
            .collect();
        let sum: Vec<Complex> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        let mut fa = a.clone();
        let mut fb = b.clone();
        let mut fsum = sum;
        fft.forward(&mut fa);
        fft.forward(&mut fb);
        fft.forward(&mut fsum);
        for i in 0..n {
            assert!(close(fsum[i], fa[i] + fb[i], 1e-8));
        }
    }

    #[test]
    fn slot_rotation_is_coefficient_automorphism() {
        // Rotating the slot vector left by 1 corresponds to re-indexing the
        // evaluation points by 5: slots ordered by 5^j make this a shift.
        let n = 8;
        let fft = SpecialFft::new(n);
        let coeffs: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64).cos(), (i as f64 * 2.0).sin()))
            .collect();
        let slots = fft.forward_reference(&coeffs);
        // σ_5 in the embedding: new slot k = old value at point 5^{k+1} =
        // old slot k+1.
        let rotated: Vec<Complex> = (0..n).map(|k| slots[(k + 1) % n]).collect();
        // Direct: evaluate p(x^5)'s embedding. p(x^5) at ζ^{5^k} = p(ζ^{5^{k+1}}).
        for k in 0..n - 1 {
            assert!(close(rotated[k], slots[k + 1], 1e-12));
        }
    }

    #[test]
    fn single_slot_transform_is_identity_up_to_point() {
        let fft = SpecialFft::new(1);
        let mut v = vec![Complex::new(2.5, -1.0)];
        let orig = v.clone();
        fft.inverse(&mut v);
        fft.forward(&mut v);
        assert!(close(v[0], orig[0], 1e-12));
    }
}
