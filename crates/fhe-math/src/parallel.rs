//! Limb-level parallelism over flat limb-major buffers.
//!
//! RNS limbs are mutually independent in every limb-wise kernel (NTT,
//! pointwise arithmetic, automorphisms — Table 3 of the paper), so a flat
//! `[u64; ℓ·N]` buffer splits into disjoint `&mut [u64]` limb chunks that
//! scoped threads can process without synchronization. Each helper here has
//! a serial fallback compiled when the `parallel` feature is off, and the
//! parallel path partitions work identically to the serial loop — the two
//! builds are **bit-identical** by construction (verified by the
//! `parallel_identity` tests).
//!
//! Work below [`MIN_PAR_ELEMS`] total elements runs serially even with the
//! feature on: thread spin-up dwarfs the kernel at test-sized rings.

/// Minimum total element count before threads are spawned.
pub const MIN_PAR_ELEMS: usize = 1 << 14;

#[cfg(feature = "parallel")]
mod force {
    use std::sync::atomic::{AtomicU8, Ordering};

    /// 0 = auto (threshold-based), 1 = always parallel, 2 = always serial.
    static FORCE: AtomicU8 = AtomicU8::new(0);

    pub(super) fn mode() -> u8 {
        FORCE.load(Ordering::Relaxed)
    }

    /// Overrides the parallel/serial decision; `None` restores the
    /// threshold heuristic. Exposed for the bit-identity tests and the
    /// serial-vs-parallel benches, which need both code paths inside one
    /// binary.
    pub fn set_forced(forced: Option<bool>) {
        let v = match forced {
            None => 0,
            Some(true) => 1,
            Some(false) => 2,
        };
        FORCE.store(v, Ordering::Relaxed);
    }
}

#[cfg(feature = "parallel")]
pub use force::set_forced;

/// Whether the `parallel` feature is compiled in.
pub const fn compiled() -> bool {
    cfg!(feature = "parallel")
}

#[cfg(feature = "parallel")]
fn worker_count(jobs: usize, total_elems: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    match force::mode() {
        // Forced parallel must actually split the work — even on a
        // single-core host — so the bit-identity tests exercise the
        // threaded partition rather than silently falling back to the
        // serial loop.
        1 => return hw.min(jobs).max(4),
        2 => return 1,
        _ => {
            if total_elems < MIN_PAR_ELEMS {
                return 1;
            }
        }
    }
    hw.min(jobs).max(1)
}

/// Runs `f(limb_index, limb)` over every `n`-element chunk of `data`.
///
/// `f` must be safe to run concurrently for distinct limbs (it always is
/// for the per-limb kernels: each closure touches only its own chunk).
pub fn for_each_limb_mut<F>(data: &mut [u64], n: usize, f: F)
where
    F: Fn(usize, &mut [u64]) + Sync,
{
    debug_assert_eq!(data.len() % n, 0);
    #[cfg(feature = "parallel")]
    {
        let l = data.len() / n;
        let workers = worker_count(l, data.len());
        if workers > 1 {
            std::thread::scope(|scope| {
                let base = l / workers;
                let extra = l % workers;
                let mut rest = data;
                let mut start = 0usize;
                for w in 0..workers {
                    let take = base + usize::from(w < extra);
                    let (head, tail) = rest.split_at_mut(take * n);
                    rest = tail;
                    let f = &f;
                    scope.spawn(move || {
                        for (j, limb) in head.chunks_exact_mut(n).enumerate() {
                            f(start + j, limb);
                        }
                    });
                    start += take;
                }
            });
            return;
        }
    }
    for (i, limb) in data.chunks_exact_mut(n).enumerate() {
        f(i, limb);
    }
}

/// Runs `f(limb_index, dst_limb, src_limb)` over paired limbs of two flat
/// buffers of equal shape (the elementwise add/sub/mul kernels).
pub fn for_each_limb_pair_mut<F>(dst: &mut [u64], src: &[u64], n: usize, f: F)
where
    F: Fn(usize, &mut [u64], &[u64]) + Sync,
{
    debug_assert_eq!(dst.len(), src.len());
    debug_assert_eq!(dst.len() % n, 0);
    #[cfg(feature = "parallel")]
    {
        let l = dst.len() / n;
        let workers = worker_count(l, dst.len());
        if workers > 1 {
            std::thread::scope(|scope| {
                let base = l / workers;
                let extra = l % workers;
                let mut d_rest = dst;
                let mut s_rest = src;
                let mut start = 0usize;
                for w in 0..workers {
                    let take = base + usize::from(w < extra);
                    let (d_head, d_tail) = d_rest.split_at_mut(take * n);
                    let (s_head, s_tail) = s_rest.split_at(take * n);
                    d_rest = d_tail;
                    s_rest = s_tail;
                    let f = &f;
                    scope.spawn(move || {
                        for (j, (d, s)) in d_head
                            .chunks_exact_mut(n)
                            .zip(s_head.chunks_exact(n))
                            .enumerate()
                        {
                            f(start + j, d, s);
                        }
                    });
                    start += take;
                }
            });
            return;
        }
    }
    for (i, (d, s)) in dst.chunks_exact_mut(n).zip(src.chunks_exact(n)).enumerate() {
        f(i, d, s);
    }
}

/// Runs `f(limb_index, dst_a_limb, dst_b_limb)` over paired limbs of two
/// flat buffers mutated together (e.g. the `(u, v)` accumulators of a key
/// switch inner product).
pub fn for_each_limb_mut2<F>(a: &mut [u64], b: &mut [u64], n: usize, f: F)
where
    F: Fn(usize, &mut [u64], &mut [u64]) + Sync,
{
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len() % n, 0);
    #[cfg(feature = "parallel")]
    {
        let l = a.len() / n;
        // Each job runs two limb kernels' worth of work.
        let workers = worker_count(l, a.len().saturating_mul(2));
        if workers > 1 {
            std::thread::scope(|scope| {
                let base = l / workers;
                let extra = l % workers;
                let mut a_rest = a;
                let mut b_rest = b;
                let mut start = 0usize;
                for w in 0..workers {
                    let take = base + usize::from(w < extra);
                    let (a_head, a_tail) = a_rest.split_at_mut(take * n);
                    let (b_head, b_tail) = b_rest.split_at_mut(take * n);
                    a_rest = a_tail;
                    b_rest = b_tail;
                    let f = &f;
                    scope.spawn(move || {
                        for (j, (da, db)) in a_head
                            .chunks_exact_mut(n)
                            .zip(b_head.chunks_exact_mut(n))
                            .enumerate()
                        {
                            f(start + j, da, db);
                        }
                    });
                    start += take;
                }
            });
            return;
        }
    }
    for (i, (da, db)) in a.chunks_exact_mut(n).zip(b.chunks_exact_mut(n)).enumerate() {
        f(i, da, db);
    }
}

/// Splits the slot dimension `0..n` into contiguous blocks and runs
/// `f(slot_range, dst_columns)` for each, where `dst_columns[j]` is the
/// block's window into target limb `j` of the flat `dst` buffer.
///
/// This is the slot-wise counterpart of [`for_each_limb_mut`]: basis
/// extension processes one coefficient across *all* limbs at a time
/// (Table 3's slot-wise pattern), so the parallel split must be along
/// slots, not limbs. Per-slot results are independent, so the split does
/// not change any value.
pub fn for_each_slot_block<F>(dst: &mut [u64], n: usize, f: F)
where
    F: Fn(std::ops::Range<usize>, &mut [&mut [u64]]) + Sync,
{
    debug_assert_eq!(dst.len() % n, 0);
    #[cfg(feature = "parallel")]
    {
        let t = dst.len() / n;
        // Cost scales with slots × (source + target) limbs; use the flat
        // length as a proxy.
        let workers = worker_count(n.div_ceil(1024), dst.len());
        if workers > 1 {
            let block = n.div_ceil(workers);
            let blocks = n.div_ceil(block);
            // Carve each target limb into per-block column windows.
            let mut per_block: Vec<Vec<&mut [u64]>> =
                (0..blocks).map(|_| Vec::with_capacity(t)).collect();
            for limb in dst.chunks_exact_mut(n) {
                let mut rest = limb;
                for cols in per_block.iter_mut() {
                    let take = block.min(rest.len());
                    let (head, tail) = rest.split_at_mut(take);
                    rest = tail;
                    cols.push(head);
                }
            }
            std::thread::scope(|scope| {
                for (b, mut cols) in per_block.into_iter().enumerate() {
                    let f = &f;
                    let lo = b * block;
                    let hi = ((b + 1) * block).min(n);
                    scope.spawn(move || f(lo..hi, &mut cols));
                }
            });
            return;
        }
    }
    let mut cols: Vec<&mut [u64]> = dst.chunks_exact_mut(n).collect();
    f(0..n, &mut cols);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn limb_iteration_covers_every_chunk() {
        let n = 1 << 12;
        let l = 6;
        let mut data = vec![0u64; l * n];
        for_each_limb_mut(&mut data, n, |i, limb| {
            for (k, x) in limb.iter_mut().enumerate() {
                *x = (i * n + k) as u64;
            }
        });
        assert!(data.iter().enumerate().all(|(k, &x)| x == k as u64));
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn forced_parallel_matches_serial() {
        let n = 64;
        let l = 5;
        let job = |data: &mut Vec<u64>| {
            for_each_limb_mut(data, n, |i, limb| {
                for (k, x) in limb.iter_mut().enumerate() {
                    *x = x.wrapping_mul(31).wrapping_add((i * 7 + k) as u64);
                }
            });
        };
        let mut serial: Vec<u64> = (0..(l * n) as u64).collect();
        let mut parallel = serial.clone();
        set_forced(Some(false));
        job(&mut serial);
        set_forced(Some(true));
        job(&mut parallel);
        set_forced(None);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn slot_blocks_partition_the_slot_range() {
        let n = 1 << 12;
        let t = 3;
        let mut dst = vec![0u64; t * n];
        for_each_slot_block(&mut dst, n, |range, cols| {
            assert_eq!(cols.len(), t);
            for (j, col) in cols.iter_mut().enumerate() {
                for (off, x) in col.iter_mut().enumerate() {
                    *x = (j * n + range.start + off) as u64;
                }
            }
        });
        assert!(dst.iter().enumerate().all(|(k, &x)| x == k as u64));
    }

    #[test]
    fn paired_iteration_lines_up() {
        let n = 32;
        let src: Vec<u64> = (0..(4 * n) as u64).collect();
        let mut dst = vec![0u64; 4 * n];
        for_each_limb_pair_mut(&mut dst, &src, n, |i, d, s| {
            for (x, &y) in d.iter_mut().zip(s) {
                *x = y + i as u64;
            }
        });
        for i in 0..4 {
            for k in 0..n {
                assert_eq!(dst[i * n + k], (i * n + k) as u64 + i as u64);
            }
        }
    }
}
