//! RNS polynomials over `Z_Q[x]/(x^N + 1)` with explicit representation
//! tracking, plus the RNS basis-change ring operations of the MAD paper:
//! `ModUp` (Algorithm 1), `ModDown` (Algorithm 2), `Rescale` (the
//! `ModDown` specialization that drops one limb), and `PModUp`
//! (Algorithm 5, the free lift `x ↦ P·x` enabling linear functions in the
//! raised basis).
//!
//! Storage is a single contiguous limb-major buffer: limb `i` occupies
//! `data[i·N .. (i+1)·N]`, so the in-memory layout literally is the
//! paper's limb-wise access pattern (Table 3) and limb-wise kernels stream
//! a flat array. Hot operations take a [`ScratchPool`] and perform no heap
//! allocation once the pool is warm; each `*_with` variant has a plain
//! wrapper for cold paths and tests.
//!
//! Every operation documents its data-access pattern (limb-wise vs
//! slot-wise per Table 3); the `simfhe` crate charges costs for exactly
//! these patterns.

use crate::automorph::Automorphism;
use crate::backend::ShoupPair;
use crate::bigint::{IBig, UBig};
use crate::parallel;
use crate::rns::{BasisExtender, RnsBasis};
use crate::scratch::ScratchPool;
use crate::telemetry;
use std::fmt;
use std::sync::Arc;

/// Which domain a polynomial's limbs currently live in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Representation {
    /// Coefficient vector (required by slot-wise basis-change operations).
    Coefficient,
    /// NTT evaluations (required by pointwise multiplication).
    Evaluation,
}

/// A polynomial in `∏ Z_{q_i}[x]/(x^N + 1)`, stored as one contiguous
/// limb-major `Vec<u64>`.
pub struct RnsPoly {
    basis: Arc<RnsBasis>,
    rep: Representation,
    data: Vec<u64>,
    /// Memory-trace identity (stable id + paper traffic class). Exists only
    /// under the `telemetry` feature so the default layout is unchanged.
    #[cfg(feature = "telemetry")]
    tag: telemetry::OperandTag,
}

impl Clone for RnsPoly {
    fn clone(&self) -> Self {
        Self {
            basis: self.basis.clone(),
            rep: self.rep,
            data: self.data.clone(),
            // A clone is a distinct buffer: same class, fresh identity.
            #[cfg(feature = "telemetry")]
            tag: telemetry::OperandTag {
                class: self.tag.class,
                id: telemetry::new_operand_id(),
            },
        }
    }
}

impl fmt::Debug for RnsPoly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RnsPoly")
            .field("limbs", &self.limb_count())
            .field("degree", &self.basis.degree())
            .field("rep", &self.rep)
            .finish()
    }
}

impl RnsPoly {
    /// The zero polynomial in the given representation.
    pub fn zero(basis: Arc<RnsBasis>, rep: Representation) -> Self {
        let len = basis.degree() * basis.len();
        Self {
            basis,
            rep,
            data: vec![0u64; len],
            #[cfg(feature = "telemetry")]
            tag: telemetry::OperandTag::scratch(),
        }
    }

    /// The zero polynomial with storage leased from `pool` (returned via
    /// [`RnsPoly::recycle`]).
    pub fn zero_pooled(basis: Arc<RnsBasis>, rep: Representation, pool: &ScratchPool) -> Self {
        let len = basis.degree() * basis.len();
        Self {
            basis,
            rep,
            data: pool.take_vec(len),
            #[cfg(feature = "telemetry")]
            tag: telemetry::OperandTag::scratch(),
        }
    }

    /// Builds a polynomial from signed coefficients (coefficient
    /// representation), reducing each into every limb.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len()` differs from the ring degree.
    pub fn from_signed_coeffs(basis: Arc<RnsBasis>, coeffs: &[i64]) -> Self {
        let n = basis.degree();
        assert_eq!(coeffs.len(), n, "coefficient count mismatch");
        let mut data = vec![0u64; n * basis.len()];
        {
            let basis = &basis;
            parallel::for_each_limb_mut(&mut data, n, |i, limb| {
                let m = basis.modulus(i);
                for (d, &c) in limb.iter_mut().zip(coeffs) {
                    *d = m.from_i64(c);
                }
            });
        }
        Self {
            basis,
            rep: Representation::Coefficient,
            data,
            #[cfg(feature = "telemetry")]
            tag: telemetry::OperandTag::scratch(),
        }
    }

    /// Builds a polynomial from a pre-reduced flat limb-major buffer
    /// (limb `i` = `data[i·N .. (i+1)·N]`).
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from `basis.len() · basis.degree()`,
    /// or (in debug builds) if any residue is unreduced.
    pub fn from_flat(basis: Arc<RnsBasis>, data: Vec<u64>, rep: Representation) -> Self {
        let n = basis.degree();
        assert_eq!(
            data.len(),
            n * basis.len(),
            "flat buffer length mismatch: {} words for {} limbs of degree {n}",
            data.len(),
            basis.len()
        );
        #[cfg(debug_assertions)]
        for (i, limb) in data.chunks_exact(n).enumerate() {
            debug_assert!(
                limb.iter().all(|&x| x < basis.modulus(i).value()),
                "limb {i} contains unreduced residues"
            );
        }
        Self {
            basis,
            rep,
            data,
            #[cfg(feature = "telemetry")]
            tag: telemetry::OperandTag::scratch(),
        }
    }

    /// The RNS basis.
    #[inline]
    pub fn basis(&self) -> &Arc<RnsBasis> {
        &self.basis
    }

    /// Current representation.
    #[inline]
    pub fn representation(&self) -> Representation {
        self.rep
    }

    /// Number of limbs `ℓ`.
    #[inline]
    pub fn limb_count(&self) -> usize {
        self.basis.len()
    }

    /// Ring degree `N`.
    #[inline]
    pub fn degree(&self) -> usize {
        self.basis.degree()
    }

    /// Read access to limb `i`.
    #[inline]
    pub fn limb(&self, i: usize) -> &[u64] {
        let n = self.basis.degree();
        &self.data[i * n..(i + 1) * n]
    }

    /// Mutable access to limb `i` (caller must preserve reduction).
    #[inline]
    pub fn limb_mut(&mut self, i: usize) -> &mut [u64] {
        let n = self.basis.degree();
        &mut self.data[i * n..(i + 1) * n]
    }

    /// Iterates over limbs in order.
    pub fn limbs_iter(&self) -> impl Iterator<Item = &[u64]> {
        self.data.chunks_exact(self.basis.degree())
    }

    /// Iterates over limbs mutably (caller must preserve reduction).
    pub fn limbs_iter_mut(&mut self) -> impl Iterator<Item = &mut [u64]> {
        self.data.chunks_exact_mut(self.basis.degree())
    }

    /// The whole limb-major buffer.
    #[inline]
    pub fn flat(&self) -> &[u64] {
        &self.data
    }

    /// Mutable access to the whole limb-major buffer (caller must preserve
    /// per-limb reduction).
    #[inline]
    pub fn flat_mut(&mut self) -> &mut [u64] {
        &mut self.data
    }

    /// Consumes the polynomial, returning its flat limb-major buffer.
    pub fn into_flat(self) -> Vec<u64> {
        self.data
    }

    /// Consumes the polynomial, returning its storage to `pool`.
    pub fn recycle(self, pool: &ScratchPool) {
        pool.recycle_vec(self.data);
    }

    /// This polynomial's memory-trace identity.
    ///
    /// With the `telemetry` feature off, a zero-id scratch tag.
    #[inline(always)]
    pub fn operand_tag(&self) -> telemetry::OperandTag {
        #[cfg(feature = "telemetry")]
        {
            self.tag
        }
        #[cfg(not(feature = "telemetry"))]
        telemetry::OperandTag {
            class: telemetry::OperandClass::Scratch,
            id: 0,
        }
    }

    /// Reclassifies this polynomial for memory-access tracing (e.g. when a
    /// kernel output is wrapped into a ciphertext or key). Emits a
    /// [`telemetry::TraceRecord::Retag`] if a trace is active; no-op with
    /// the feature off.
    #[inline(always)]
    pub fn set_operand_class(&mut self, class: telemetry::OperandClass) {
        #[cfg(feature = "telemetry")]
        {
            self.tag.class = class;
            telemetry::record_retag(self.tag.id, class);
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = class;
    }

    /// Records a whole-buffer streamed touch of this operand for the
    /// memory-access trace (no-op unless a trace is active).
    #[inline(always)]
    pub fn trace_touch(&self, write: bool) {
        #[cfg(feature = "telemetry")]
        telemetry::record_touch(self.tag, write, 0, 8 * self.data.len() as u64);
        #[cfg(not(feature = "telemetry"))]
        let _ = write;
    }

    /// Records a streamed touch of `limb_count` limbs starting at
    /// `first_limb` (no-op unless a trace is active).
    #[inline(always)]
    pub fn trace_touch_limbs(&self, write: bool, first_limb: usize, limb_count: usize) {
        #[cfg(feature = "telemetry")]
        {
            let n = self.basis.degree() as u64;
            telemetry::record_touch(
                self.tag,
                write,
                8 * n * first_limb as u64,
                8 * n * limb_count as u64,
            );
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = (write, first_limb, limb_count);
    }

    fn assert_compatible(&self, other: &RnsPoly) {
        assert_eq!(self.rep, other.rep, "representation mismatch");
        assert_eq!(self.limb_count(), other.limb_count(), "limb count mismatch");
        debug_assert!(
            self.basis
                .moduli()
                .iter()
                .zip(other.basis.moduli())
                .all(|(a, b)| a.value() == b.value()),
            "basis mismatch"
        );
    }

    /// Converts to evaluation representation in place (`ℓ` forward NTTs;
    /// limb-wise access pattern). No-op if already in evaluation form.
    pub fn to_eval(&mut self) {
        if self.rep == Representation::Evaluation {
            return;
        }
        self.trace_touch(false);
        self.trace_touch(true);
        let n = self.basis.degree();
        let basis = &self.basis;
        parallel::for_each_limb_mut(&mut self.data, n, |i, limb| {
            basis.ntt_table(i).forward(limb);
        });
        self.rep = Representation::Evaluation;
    }

    /// Converts to coefficient representation in place (`ℓ` inverse NTTs;
    /// limb-wise access pattern). No-op if already in coefficient form.
    pub fn to_coeff(&mut self) {
        if self.rep == Representation::Coefficient {
            return;
        }
        self.trace_touch(false);
        self.trace_touch(true);
        let n = self.basis.degree();
        let basis = &self.basis;
        parallel::for_each_limb_mut(&mut self.data, n, |i, limb| {
            basis.ntt_table(i).inverse(limb);
        });
        self.rep = Representation::Coefficient;
    }

    /// `self += other` (works in either representation; both operands must
    /// match).
    pub fn add_assign(&mut self, other: &RnsPoly) {
        self.assert_compatible(other);
        let n = self.basis.degree();
        let basis = &self.basis;
        telemetry::record_ops(0, self.data.len() as u64);
        telemetry::record_transfer(16 * self.data.len() as u64, 8 * self.data.len() as u64);
        self.trace_touch(false);
        other.trace_touch(false);
        self.trace_touch(true);
        parallel::for_each_limb_pair_mut(&mut self.data, &other.data, n, |i, dst, src| {
            basis.backend().pointwise_add(basis.modulus(i), dst, src);
        });
    }

    /// `self -= other`.
    pub fn sub_assign(&mut self, other: &RnsPoly) {
        self.assert_compatible(other);
        let n = self.basis.degree();
        let basis = &self.basis;
        telemetry::record_ops(0, self.data.len() as u64);
        telemetry::record_transfer(16 * self.data.len() as u64, 8 * self.data.len() as u64);
        self.trace_touch(false);
        other.trace_touch(false);
        self.trace_touch(true);
        parallel::for_each_limb_pair_mut(&mut self.data, &other.data, n, |i, dst, src| {
            basis.backend().pointwise_sub(basis.modulus(i), dst, src);
        });
    }

    /// `self = -self`.
    pub fn negate(&mut self) {
        let n = self.basis.degree();
        let basis = &self.basis;
        telemetry::record_ops(0, self.data.len() as u64);
        telemetry::record_transfer(8 * self.data.len() as u64, 8 * self.data.len() as u64);
        self.trace_touch(false);
        self.trace_touch(true);
        parallel::for_each_limb_mut(&mut self.data, n, |i, limb| {
            basis.backend().pointwise_neg(basis.modulus(i), limb);
        });
    }

    /// Pointwise product `self *= other`.
    ///
    /// # Panics
    ///
    /// Panics unless both polynomials are in evaluation representation.
    pub fn mul_assign_pointwise(&mut self, other: &RnsPoly) {
        assert_eq!(
            self.rep,
            Representation::Evaluation,
            "pointwise product requires evaluation representation"
        );
        self.assert_compatible(other);
        let n = self.basis.degree();
        let basis = &self.basis;
        telemetry::record_ops(self.data.len() as u64, 0);
        telemetry::record_transfer(16 * self.data.len() as u64, 8 * self.data.len() as u64);
        self.trace_touch(false);
        other.trace_touch(false);
        self.trace_touch(true);
        parallel::for_each_limb_pair_mut(&mut self.data, &other.data, n, |i, dst, src| {
            basis.backend().pointwise_mul(basis.modulus(i), dst, src);
        });
    }

    /// Pointwise product into an existing output polynomial (same basis and
    /// shape), leaving `self` untouched. Avoids the clone a
    /// `mul_assign_pointwise` caller would otherwise need when both inputs
    /// are still live.
    ///
    /// # Panics
    ///
    /// Panics unless both inputs are in evaluation representation and `out`
    /// has the same shape.
    pub fn mul_pointwise_into(&self, other: &RnsPoly, out: &mut RnsPoly) {
        assert_eq!(
            self.rep,
            Representation::Evaluation,
            "pointwise product requires evaluation representation"
        );
        self.assert_compatible(other);
        assert_eq!(out.data.len(), self.data.len(), "output shape mismatch");
        out.rep = Representation::Evaluation;
        let n = self.basis.degree();
        let basis = &self.basis;
        let a = &self.data;
        let b = &other.data;
        telemetry::record_ops(a.len() as u64, 0);
        telemetry::record_transfer(16 * a.len() as u64, 8 * a.len() as u64);
        self.trace_touch(false);
        other.trace_touch(false);
        out.trace_touch(true);
        parallel::for_each_limb_mut(&mut out.data, n, |i, dst| {
            let off = i * n;
            basis.backend().pointwise_mul_into(
                basis.modulus(i),
                &a[off..off + n],
                &b[off..off + n],
                dst,
            );
        });
    }

    /// Multiplies every limb by a (per-limb-reduced) scalar.
    pub fn mul_scalar_assign(&mut self, scalar: u64) {
        let n = self.basis.degree();
        let basis = &self.basis;
        telemetry::record_ops(self.data.len() as u64, 0);
        telemetry::record_transfer(8 * self.data.len() as u64, 8 * self.data.len() as u64);
        self.trace_touch(false);
        self.trace_touch(true);
        parallel::for_each_limb_mut(&mut self.data, n, |i, limb| {
            let m = basis.modulus(i);
            let s = ShoupPair::new(m, m.reduce(scalar));
            basis.backend().scale_shoup(m, limb, s);
        });
    }

    /// Multiplies limb `i` by a scalar reduced mod `q_i`, one scalar per
    /// limb.
    ///
    /// # Panics
    ///
    /// Panics if `scalars.len() != self.limb_count()`.
    pub fn mul_scalar_per_limb_assign(&mut self, scalars: &[u64]) {
        assert_eq!(scalars.len(), self.limb_count());
        let n = self.basis.degree();
        let basis = &self.basis;
        telemetry::record_ops(self.data.len() as u64, 0);
        telemetry::record_transfer(8 * self.data.len() as u64, 8 * self.data.len() as u64);
        self.trace_touch(false);
        self.trace_touch(true);
        parallel::for_each_limb_mut(&mut self.data, n, |i, limb| {
            let m = basis.modulus(i);
            let s = ShoupPair::new(m, m.reduce(scalars[i]));
            basis.backend().scale_shoup(m, limb, s);
        });
    }

    /// Applies a Galois automorphism, producing a new polynomial in the same
    /// representation.
    pub fn automorphism(&self, auto: &Automorphism) -> RnsPoly {
        let mut out = RnsPoly::zero(self.basis.clone(), self.rep);
        self.automorphism_into(auto, &mut out);
        out
    }

    /// Applies a Galois automorphism into an existing polynomial of the same
    /// shape (the allocation-free variant used by rotation hot paths).
    ///
    /// # Panics
    ///
    /// Panics if `out` was built over a different shape.
    pub fn automorphism_into(&self, auto: &Automorphism, out: &mut RnsPoly) {
        assert_eq!(out.data.len(), self.data.len(), "output shape mismatch");
        out.rep = self.rep;
        let n = self.basis.degree();
        let basis = &self.basis;
        let rep = self.rep;
        let src = &self.data;
        // A pure permutation: no modular ops, only streamed limb traffic.
        telemetry::record_transfer(8 * src.len() as u64, 8 * src.len() as u64);
        self.trace_touch(false);
        out.trace_touch(true);
        parallel::for_each_limb_mut(&mut out.data, n, |i, dst| {
            let s = &src[i * n..(i + 1) * n];
            match rep {
                Representation::Coefficient => auto.apply_coeff(s, dst, basis.modulus(i).value()),
                Representation::Evaluation => auto.apply_eval(s, dst),
            }
        });
    }

    /// Drops trailing limbs, restricting to the first `keep` limbs of the
    /// basis (a plain basis restriction — no division; contrast with
    /// [`rescale`]).
    ///
    /// # Panics
    ///
    /// Panics if `keep` is zero or exceeds the current limb count.
    pub fn drop_to(&self, keep: usize) -> RnsPoly {
        assert!(keep >= 1 && keep <= self.limb_count());
        let n = self.basis.degree();
        self.trace_touch_limbs(false, 0, keep);
        let out = RnsPoly {
            basis: Arc::new(self.basis.prefix(keep)),
            rep: self.rep,
            data: self.data[..keep * n].to_vec(),
            #[cfg(feature = "telemetry")]
            tag: telemetry::OperandTag::scratch(),
        };
        out.trace_touch(true);
        out
    }

    /// In-place version of [`RnsPoly::drop_to`]: truncates the buffer to the
    /// first `keep` limbs without copying, adopting the provided prefix
    /// basis (typically a cached `Arc` from the scheme context).
    ///
    /// # Panics
    ///
    /// Panics if `keep` exceeds the limb count or `prefix_basis` is not the
    /// length-`keep` prefix of the current basis.
    pub fn truncate_limbs(&mut self, keep: usize, prefix_basis: Arc<RnsBasis>) {
        assert!(keep >= 1 && keep <= self.limb_count());
        assert_eq!(prefix_basis.len(), keep, "prefix basis length mismatch");
        debug_assert!(
            prefix_basis
                .moduli()
                .iter()
                .zip(self.basis.moduli())
                .all(|(a, b)| a.value() == b.value()),
            "prefix basis mismatch"
        );
        let n = self.basis.degree();
        self.data.truncate(keep * n);
        self.basis = prefix_basis;
    }

    /// CRT-reconstructs coefficient `k` to a centered big integer in
    /// `(−Q/2, Q/2]`. Requires coefficient representation.
    ///
    /// # Panics
    ///
    /// Panics in evaluation representation or if `k` is out of range.
    pub fn coeff_centered(&self, k: usize) -> IBig {
        assert_eq!(
            self.rep,
            Representation::Coefficient,
            "reconstruction requires coefficient representation"
        );
        let residues: Vec<u64> = self.limbs_iter().map(|l| l[k]).collect();
        let v = self.basis.crt_reconstruct(&residues);
        let q = self.basis.product();
        let half = q.shr(1);
        if v > half {
            let mut mag = q;
            mag.sub_assign(&v);
            IBig {
                negative: true,
                magnitude: mag,
            }
        } else {
            IBig {
                negative: false,
                magnitude: v,
            }
        }
    }

    /// Infinity norm of the centered coefficients, as `f64` (diagnostics and
    /// noise-budget tests).
    pub fn inf_norm(&self) -> f64 {
        (0..self.degree())
            .map(|k| self.coeff_centered(k).to_f64().abs())
            .fold(0.0, f64::max)
    }
}

/// `Rescale` (the paper's Table 2 column): divides by the last limb modulus
/// and drops that limb, keeping the scaling factor stable after a
/// multiplication.
///
/// Input and output are in evaluation representation. Internally: one iNTT
/// on the dropped limb (limb-wise), a centered reduction of that limb into
/// every remaining modulus (slot-wise in spirit, but single-source so it
/// streams), `ℓ−1` forward NTTs, and a pointwise subtract-and-scale.
/// Scratch and output storage come from `pool`.
///
/// # Panics
///
/// Panics unless `poly` is in evaluation representation with ≥ 2 limbs.
pub fn rescale_with(poly: &RnsPoly, pool: &ScratchPool) -> RnsPoly {
    assert_eq!(
        poly.representation(),
        Representation::Evaluation,
        "rescale expects evaluation representation"
    );
    let l = poly.limb_count();
    assert!(l >= 2, "cannot rescale a single-limb polynomial");
    let n = poly.degree();
    let basis = poly.basis();
    let q_last = basis.modulus(l - 1);

    // Beyond the transforms (recorded by the NTT hooks): per kept limb,
    // n centered reductions (counted as adds), n subtracts, n scale mults.
    let kept = (l - 1) as u64;
    telemetry::record_ops(kept * n as u64, 2 * kept * n as u64);
    telemetry::record_transfer(8 * (n as u64) * (1 + kept), 8 * n as u64);
    poly.trace_touch(false);

    // iNTT the dropped limb.
    let mut last = pool.take(n);
    last.copy_from_slice(poly.limb(l - 1));
    basis.ntt_table(l - 1).inverse(&mut last);

    let mut out = RnsPoly {
        basis: Arc::new(basis.prefix(l - 1)),
        rep: Representation::Evaluation,
        data: pool.take_vec((l - 1) * n),
        #[cfg(feature = "telemetry")]
        tag: telemetry::OperandTag::scratch(),
    };
    out.trace_touch(true);
    let src = poly.flat();
    let last = &last;
    parallel::for_each_limb_mut(&mut out.data, n, |i, limb| {
        let qi = basis.modulus(i);
        let inv = qi
            .inv(qi.reduce(q_last.value()))
            .expect("limb moduli are coprime");
        let inv = ShoupPair::new(qi, inv);
        // Centered image of the dropped limb in q_i, NTT'd in place inside
        // the output limb — no per-limb temporary needed.
        for (x, &c) in limb.iter_mut().zip(last.iter()) {
            *x = qi.from_i64(q_last.to_centered(c));
        }
        basis.ntt_table(i).forward(limb);
        let off = i * n;
        basis
            .backend()
            .sub_scale_shoup(qi, &src[off..off + n], limb, inv);
    });
    out
}

/// [`rescale_with`] against a throwaway pool (cold paths and tests).
pub fn rescale(poly: &RnsPoly) -> RnsPoly {
    rescale_with(poly, &ScratchPool::new())
}

/// Precomputed constants for [`mod_down`]: dividing by `P = ∏ B'` after a
/// key switch in the raised basis `B ∪ B'`.
#[derive(Debug, Clone)]
pub struct ModDownContext {
    /// Extends residues from the special basis `B'` into `B`.
    extender: BasisExtender,
    /// The output basis `B` (shared so `mod_down` allocates nothing).
    out_basis: Arc<RnsBasis>,
    /// `P^{-1} mod q_i` for each limb of `B`, with Shoup companions.
    p_inv: Vec<ShoupPair>,
    /// `⌊P/2⌋ mod q_i` for each limb of `B` (centering trick).
    half_p_mod_q: Vec<u64>,
    /// `⌊P/2⌋ mod p_j` for each limb of `B'`.
    half_p_mod_p: Vec<u64>,
    q_len: usize,
    p_len: usize,
}

impl ModDownContext {
    /// Precomputes the `ModDown` constants for dropping `p_basis` from
    /// `q_basis ∪ p_basis`.
    pub fn new(q_basis: Arc<RnsBasis>, p_basis: &RnsBasis) -> Self {
        let extender = BasisExtender::new(p_basis, &q_basis);
        let mut p_inv = Vec::with_capacity(q_basis.len());
        for qi in q_basis.moduli() {
            let mut p_mod = 1u64;
            for pj in p_basis.moduli() {
                p_mod = qi.mul(p_mod, qi.reduce(pj.value()));
            }
            let inv = qi.inv(p_mod).expect("P coprime to q_i");
            p_inv.push(ShoupPair::new(qi, inv));
        }
        // Centering trick constants: ⌊P/2⌋ reduced into every modulus.
        let half_p = UBig::product(
            &p_basis
                .moduli()
                .iter()
                .map(|m| m.value())
                .collect::<Vec<_>>(),
        )
        .shr(1);
        let half_p_mod_q = q_basis
            .moduli()
            .iter()
            .map(|qi| qi.reduce(half_p.rem_u64(qi.value())))
            .collect();
        let half_p_mod_p = p_basis
            .moduli()
            .iter()
            .map(|pj| pj.reduce(half_p.rem_u64(pj.value())))
            .collect();
        Self {
            extender,
            q_len: q_basis.len(),
            p_len: p_basis.len(),
            out_basis: q_basis,
            p_inv,
            half_p_mod_q,
            half_p_mod_p,
        }
    }
}

/// `ModDown` (Algorithm 2): given `x` over `B ∪ B'` (with the `B'` limbs
/// stored last), returns `⌊P^{-1}·x⌉` over `B`.
///
/// Input and output are in evaluation representation, matching the
/// algorithm as stated in the paper: the `B'` limbs are iNTT'd (limb-wise),
/// extended into `B` via `NewLimb` (slot-wise), NTT'd back (limb-wise), and
/// combined pointwise. All working and output storage comes from `pool`;
/// with a warm pool the call performs zero heap allocations.
///
/// # Panics
///
/// Panics if `poly` is not in evaluation representation or its limb count
/// does not equal `q_len + p_len` of the context.
pub fn mod_down_with(poly: &RnsPoly, ctx: &ModDownContext, pool: &ScratchPool) -> RnsPoly {
    assert_eq!(
        poly.representation(),
        Representation::Evaluation,
        "mod_down expects evaluation representation"
    );
    assert_eq!(
        poly.limb_count(),
        ctx.q_len + ctx.p_len,
        "limb count must equal |B| + |B'|"
    );
    let n = poly.degree();
    let basis = poly.basis();

    // Beyond transforms and the NewLimb conversion (recorded by their own
    // hooks): the centering trick adds n ops per special limb before the
    // conversion and n per output limb after, and the combine does n
    // subtracts + n scale mults per output limb.
    telemetry::record_ops(
        (ctx.q_len * n) as u64,
        ((ctx.p_len + 2 * ctx.q_len) * n) as u64,
    );
    telemetry::record_transfer(8 * ((ctx.p_len + ctx.q_len) * n) as u64, 0);
    poly.trace_touch(false);

    // Step 1: iNTT the special limbs (limb-wise), then apply the centering
    // trick — add P/2 before conversion and subtract (P/2 mod q_i) after,
    // turning the floor of the fast conversion into a round.
    let mut special = pool.take(ctx.p_len * n);
    special.copy_from_slice(&poly.flat()[ctx.q_len * n..]);
    parallel::for_each_limb_mut(&mut special, n, |j, limb| {
        let pj = basis.modulus(ctx.q_len + j);
        basis.ntt_table(ctx.q_len + j).inverse(limb);
        basis.backend().add_scalar(pj, limb, ctx.half_p_mod_p[j]);
    });

    // Step 2: NewLimb into each q_i (slot-wise), written straight into the
    // output buffer.
    let mut out = RnsPoly {
        basis: ctx.out_basis.clone(),
        rep: Representation::Evaluation,
        data: pool.take_vec(ctx.q_len * n),
        #[cfg(feature = "telemetry")]
        tag: telemetry::OperandTag::scratch(),
    };
    out.trace_touch(true);
    ctx.extender.extend_flat(&special, &mut out.data, n);

    // Step 3: un-center, NTT the converted limbs, combine (limb-wise).
    let src = poly.flat();
    parallel::for_each_limb_mut(&mut out.data, n, |i, limb| {
        let qi = basis.modulus(i);
        basis.backend().sub_scalar(qi, limb, ctx.half_p_mod_q[i]);
        basis.ntt_table(i).forward(limb);
        let off = i * n;
        basis
            .backend()
            .sub_scale_shoup(qi, &src[off..off + n], limb, ctx.p_inv[i]);
    });
    out
}

/// [`mod_down_with`] against a throwaway pool (cold paths and tests).
pub fn mod_down(poly: &RnsPoly, ctx: &ModDownContext) -> RnsPoly {
    mod_down_with(poly, ctx, &ScratchPool::new())
}

/// `PModUp` (Algorithm 5): the free lift `x ↦ P·x` from `B` to `B ∪ B'`.
///
/// Multiplies each existing limb by `[P]_{q_i}` and appends zero limbs for
/// `B'` (since `P·x ≡ 0 mod p_j`). Unlike `ModUp` this needs **no NTTs and
/// no slot-wise pass** — the paper's key observation enabling linear
/// functions in the raised basis. Works in either representation.
///
/// `raised_basis` must be `B ∪ B'` in order (typically the scheme context's
/// cached raised basis); output storage comes from `pool`.
pub fn pmod_up_with(poly: &RnsPoly, raised_basis: Arc<RnsBasis>, pool: &ScratchPool) -> RnsPoly {
    let basis = poly.basis();
    let l = basis.len();
    let n = poly.degree();
    assert!(
        raised_basis.len() > l,
        "raised basis must extend the polynomial's basis"
    );
    debug_assert!(
        raised_basis
            .moduli()
            .iter()
            .zip(basis.moduli())
            .all(|(a, b)| a.value() == b.value()),
        "raised basis must start with the polynomial's basis"
    );
    telemetry::record_ops((l * n) as u64, 0);
    telemetry::record_transfer(8 * (l * n) as u64, 8 * (raised_basis.len() * n) as u64);
    poly.trace_touch(false);
    let mut out = RnsPoly {
        rep: poly.representation(),
        data: pool.take_vec(raised_basis.len() * n),
        basis: raised_basis,
        #[cfg(feature = "telemetry")]
        tag: telemetry::OperandTag::scratch(),
    };
    out.trace_touch(true);
    let out_basis = out.basis.clone();
    let src = poly.flat();
    // The appended B' limbs stay zero; scale the B limbs by [P]_{q_i}.
    parallel::for_each_limb_mut(&mut out.data[..l * n], n, |i, limb| {
        let qi = basis.modulus(i);
        let mut p_mod = 1u64;
        for pj in &out_basis.moduli()[l..] {
            p_mod = qi.mul(p_mod, qi.reduce(pj.value()));
        }
        let p = ShoupPair::new(qi, p_mod);
        let off = i * n;
        limb.copy_from_slice(&src[off..off + n]);
        basis.backend().scale_shoup(qi, limb, p);
    });
    out
}

/// [`pmod_up_with`] building the joined basis on the fly (cold paths and
/// tests).
pub fn pmod_up(poly: &RnsPoly, p_basis: &RnsBasis) -> RnsPoly {
    let joined = Arc::new(poly.basis().concat(p_basis));
    pmod_up_with(poly, joined, &ScratchPool::new())
}

/// `ModUp` (Algorithm 1): extends `x` from `B` to `B ∪ B'`, preserving the
/// representative `x ∈ [0, Q)` exactly (the extender's float correction
/// removes the fast-conversion excess).
///
/// Input/output in evaluation representation: iNTT all source limbs
/// (limb-wise), `NewLimb` into `B'` (slot-wise), NTT the new limbs
/// (limb-wise). The source limbs are passed through untouched (line 4 of
/// the algorithm: no NTT needed on input limbs).
///
/// `raised_basis` must be `B ∪ B'` in order; scratch and output storage
/// come from `pool`.
///
/// # Panics
///
/// Panics if `poly` is not in evaluation representation.
pub fn mod_up_with(
    poly: &RnsPoly,
    raised_basis: Arc<RnsBasis>,
    extender: &BasisExtender,
    pool: &ScratchPool,
) -> RnsPoly {
    assert_eq!(
        poly.representation(),
        Representation::Evaluation,
        "mod_up expects evaluation representation"
    );
    let l = poly.limb_count();
    let n = poly.degree();
    let basis = poly.basis();
    assert_eq!(extender.source_len(), l);
    assert_eq!(extender.target_len(), raised_basis.len() - l);

    // Transforms and the NewLimb conversion are recorded by their own
    // hooks; the two pass-through copies are pure limb traffic.
    telemetry::record_transfer(16 * (l * n) as u64, 16 * (l * n) as u64);
    poly.trace_touch(false);

    let mut coeff = pool.take(l * n);
    coeff.copy_from_slice(poly.flat());
    parallel::for_each_limb_mut(&mut coeff, n, |i, limb| {
        basis.ntt_table(i).inverse(limb);
    });

    let mut out = RnsPoly {
        rep: Representation::Evaluation,
        data: pool.take_vec(raised_basis.len() * n),
        basis: raised_basis,
        #[cfg(feature = "telemetry")]
        tag: telemetry::OperandTag::scratch(),
    };
    out.trace_touch(true);
    out.data[..l * n].copy_from_slice(poly.flat());
    let (_, new_limbs) = out.data.split_at_mut(l * n);
    extender.extend_flat(&coeff, new_limbs, n);
    let out_basis = out.basis.clone();
    parallel::for_each_limb_mut(new_limbs, n, |j, limb| {
        out_basis.ntt_table(l + j).forward(limb);
    });
    out
}

/// [`mod_up_with`] building the joined basis on the fly (cold paths and
/// tests).
pub fn mod_up(poly: &RnsPoly, p_basis: &RnsBasis, extender: &BasisExtender) -> RnsPoly {
    let joined = Arc::new(poly.basis().concat(p_basis));
    mod_up_with(poly, joined, extender, &ScratchPool::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prime::{generate_ntt_primes, generate_ntt_primes_excluding};

    const N: usize = 32;

    fn q_basis(limbs: usize) -> Arc<RnsBasis> {
        Arc::new(RnsBasis::new(&generate_ntt_primes(limbs, 30, N), N).unwrap())
    }

    fn p_basis_for(q: &RnsBasis, limbs: usize) -> RnsBasis {
        let q_primes: Vec<u64> = q.moduli().iter().map(|m| m.value()).collect();
        RnsBasis::new(&generate_ntt_primes_excluding(limbs, 31, N, &q_primes), N).unwrap()
    }

    #[test]
    fn signed_roundtrip_through_crt() {
        let basis = q_basis(3);
        let coeffs: Vec<i64> = (0..N as i64).map(|i| i * 1000 - 16000).collect();
        let poly = RnsPoly::from_signed_coeffs(basis, &coeffs);
        for k in 0..N {
            assert_eq!(poly.coeff_centered(k).to_f64(), coeffs[k] as f64);
        }
    }

    #[test]
    fn rep_switch_roundtrip() {
        let basis = q_basis(2);
        let coeffs: Vec<i64> = (0..N as i64).map(|i| i - 7).collect();
        let mut poly = RnsPoly::from_signed_coeffs(basis, &coeffs);
        let orig = poly.clone();
        poly.to_eval();
        assert_eq!(poly.representation(), Representation::Evaluation);
        poly.to_coeff();
        for i in 0..poly.limb_count() {
            assert_eq!(poly.limb(i), orig.limb(i));
        }
    }

    #[test]
    fn flat_layout_is_limb_major() {
        let basis = q_basis(3);
        let coeffs: Vec<i64> = (0..N as i64).collect();
        let poly = RnsPoly::from_signed_coeffs(basis, &coeffs);
        assert_eq!(poly.flat().len(), 3 * N);
        for (i, limb) in poly.limbs_iter().enumerate() {
            assert_eq!(limb, &poly.flat()[i * N..(i + 1) * N]);
            assert_eq!(limb, poly.limb(i));
        }
    }

    #[test]
    fn from_flat_roundtrips() {
        let basis = q_basis(2);
        let coeffs: Vec<i64> = (0..N as i64).map(|i| 2 * i + 1).collect();
        let poly = RnsPoly::from_signed_coeffs(basis.clone(), &coeffs);
        let data = poly.clone().into_flat();
        let back = RnsPoly::from_flat(basis, data, Representation::Coefficient);
        for i in 0..2 {
            assert_eq!(back.limb(i), poly.limb(i));
        }
    }

    #[test]
    #[should_panic(expected = "flat buffer length mismatch")]
    fn from_flat_rejects_bad_length() {
        let basis = q_basis(2);
        let _ = RnsPoly::from_flat(basis, vec![0u64; N], Representation::Coefficient);
    }

    #[test]
    fn pooled_polys_recycle_storage() {
        let pool = ScratchPool::new();
        let basis = q_basis(2);
        let p = RnsPoly::zero_pooled(basis.clone(), Representation::Coefficient, &pool);
        p.recycle(&pool);
        let q = RnsPoly::zero_pooled(basis, Representation::Coefficient, &pool);
        assert_eq!(pool.stats().misses, 1, "second poly reuses the buffer");
        drop(q);
    }

    #[test]
    fn arithmetic_matches_integer_semantics() {
        let basis = q_basis(2);
        let a: Vec<i64> = (0..N as i64).map(|i| 3 * i + 1).collect();
        let b: Vec<i64> = (0..N as i64).map(|i| -2 * i + 5).collect();
        let mut pa = RnsPoly::from_signed_coeffs(basis.clone(), &a);
        let pb = RnsPoly::from_signed_coeffs(basis, &b);
        pa.add_assign(&pb);
        for k in 0..N {
            assert_eq!(pa.coeff_centered(k).to_f64(), (a[k] + b[k]) as f64);
        }
        pa.sub_assign(&pb);
        pa.negate();
        for k in 0..N {
            assert_eq!(pa.coeff_centered(k).to_f64(), -a[k] as f64);
        }
    }

    #[test]
    fn pointwise_mul_is_negacyclic_convolution() {
        let basis = q_basis(2);
        // a = x^{N-1}, b = x² → product = -x.
        let mut ac = vec![0i64; N];
        ac[N - 1] = 1;
        let mut bc = vec![0i64; N];
        bc[2] = 1;
        let mut a = RnsPoly::from_signed_coeffs(basis.clone(), &ac);
        let mut b = RnsPoly::from_signed_coeffs(basis, &bc);
        a.to_eval();
        b.to_eval();
        a.mul_assign_pointwise(&b);
        a.to_coeff();
        for k in 0..N {
            let expect = if k == 1 { -1.0 } else { 0.0 };
            assert_eq!(a.coeff_centered(k).to_f64(), expect, "k={k}");
        }
    }

    #[test]
    fn mul_pointwise_into_matches_assign() {
        let basis = q_basis(2);
        let ac: Vec<i64> = (0..N as i64).map(|i| i - 9).collect();
        let bc: Vec<i64> = (0..N as i64).map(|i| 2 * i + 3).collect();
        let mut a = RnsPoly::from_signed_coeffs(basis.clone(), &ac);
        let mut b = RnsPoly::from_signed_coeffs(basis.clone(), &bc);
        a.to_eval();
        b.to_eval();
        let mut out = RnsPoly::zero(basis, Representation::Evaluation);
        a.mul_pointwise_into(&b, &mut out);
        a.mul_assign_pointwise(&b);
        assert_eq!(a.flat(), out.flat());
    }

    #[test]
    fn scalar_multiplication() {
        let basis = q_basis(3);
        let coeffs: Vec<i64> = (0..N as i64).map(|i| i + 1).collect();
        let mut poly = RnsPoly::from_signed_coeffs(basis, &coeffs);
        poly.mul_scalar_assign(7);
        for k in 0..N {
            assert_eq!(poly.coeff_centered(k).to_f64(), (7 * coeffs[k]) as f64);
        }
    }

    #[test]
    fn rescale_divides_by_last_modulus() {
        let basis = q_basis(3);
        let q_last = basis.modulus(2).value();
        // Pick coefficients that are exact multiples of q_last so the
        // division is exact.
        let coeffs: Vec<i64> = (0..N as i64).map(|i| (i - 4) * q_last as i64).collect();
        let mut poly = RnsPoly::from_signed_coeffs(basis, &coeffs);
        poly.to_eval();
        let mut scaled = rescale(&poly);
        assert_eq!(scaled.limb_count(), 2);
        scaled.to_coeff();
        for k in 0..N {
            assert_eq!(
                scaled.coeff_centered(k).to_f64(),
                (k as i64 - 4) as f64,
                "k={k}"
            );
        }
    }

    #[test]
    fn rescale_rounding_error_is_small() {
        let basis = q_basis(3);
        let q_last = basis.modulus(2).value() as i64;
        let coeffs: Vec<i64> = (0..N as i64).map(|i| i * q_last + (i % 17) - 8).collect();
        let mut poly = RnsPoly::from_signed_coeffs(basis, &coeffs);
        poly.to_eval();
        let mut scaled = rescale(&poly);
        scaled.to_coeff();
        for k in 0..N {
            let expect = k as f64; // remainder (±8) / q_last rounds to 0 or ±1
            let got = scaled.coeff_centered(k).to_f64();
            assert!((got - expect).abs() <= 1.0, "k={k}: {got} vs {expect}");
        }
    }

    #[test]
    fn pmod_up_scales_by_p_exactly() {
        let q = q_basis(2);
        let p = p_basis_for(&q, 2);
        let p_product: f64 = p.moduli().iter().map(|m| m.value() as f64).product();
        let coeffs: Vec<i64> = (0..N as i64).map(|i| i - 10).collect();
        let poly = RnsPoly::from_signed_coeffs(q, &coeffs);
        let lifted = pmod_up(&poly, &p);
        assert_eq!(lifted.limb_count(), 4);
        for k in 0..N {
            let got = lifted.coeff_centered(k).to_f64();
            let expect = coeffs[k] as f64 * p_product;
            let rel = if expect == 0.0 {
                got.abs()
            } else {
                ((got - expect) / expect).abs()
            };
            assert!(rel < 1e-9, "k={k}: {got} vs {expect}");
        }
    }

    #[test]
    fn mod_down_inverts_pmod_up() {
        let q = q_basis(3);
        let p = p_basis_for(&q, 2);
        let ctx = ModDownContext::new(q.clone(), &p);
        let coeffs: Vec<i64> = (0..N as i64).map(|i| 5 * i - 37).collect();
        let mut poly = RnsPoly::from_signed_coeffs(q, &coeffs);
        poly.to_eval();
        let mut lifted = pmod_up(&poly, &p);
        lifted.to_eval(); // already eval; no-op (pmod_up preserves rep)
        let mut lowered = mod_down(&lifted, &ctx);
        lowered.to_coeff();
        for k in 0..N {
            let got = lowered.coeff_centered(k).to_f64();
            assert!(
                (got - coeffs[k] as f64).abs() <= 1.0,
                "k={k}: {got} vs {}",
                coeffs[k]
            );
        }
    }

    #[test]
    fn mod_up_preserves_value_mod_new_primes() {
        let q = q_basis(2);
        let p = p_basis_for(&q, 2);
        let ext = BasisExtender::new(&q, &p);
        // Small positive coefficients: no conversion excess, exact match.
        let coeffs: Vec<i64> = (0..N as i64).map(|i| i + 1).collect();
        let mut poly = RnsPoly::from_signed_coeffs(q.clone(), &coeffs);
        poly.to_eval();
        let mut up = mod_up(&poly, &p, &ext);
        assert_eq!(up.limb_count(), 4);
        up.to_coeff();
        for j in 0..p.len() {
            let pj = p.modulus(j);
            for k in 0..N {
                assert_eq!(
                    up.limb(2 + j)[k],
                    pj.from_i64(coeffs[k]),
                    "limb {j} coeff {k}"
                );
            }
        }
    }

    #[test]
    fn automorphism_on_rns_poly_matches_signed_semantics() {
        let basis = q_basis(2);
        let table = basis.ntt_table(0).clone();
        let auto = Automorphism::new(5, &table);
        let coeffs: Vec<i64> = (0..N as i64).map(|i| i - 3).collect();
        let poly = RnsPoly::from_signed_coeffs(basis, &coeffs);
        let out = poly.automorphism(&auto);
        // x^1 maps to x^5 (sign positive since 5 < N).
        assert_eq!(out.coeff_centered(5).to_f64(), coeffs[1] as f64);
    }

    #[test]
    fn drop_to_restricts_basis() {
        let basis = q_basis(3);
        let coeffs: Vec<i64> = (0..N as i64).collect();
        let poly = RnsPoly::from_signed_coeffs(basis, &coeffs);
        let dropped = poly.drop_to(2);
        assert_eq!(dropped.limb_count(), 2);
        assert_eq!(dropped.limb(0), poly.limb(0));
    }

    #[test]
    fn truncate_limbs_matches_drop_to() {
        let basis = q_basis(3);
        let coeffs: Vec<i64> = (0..N as i64).map(|i| 3 * i - 11).collect();
        let mut poly = RnsPoly::from_signed_coeffs(basis.clone(), &coeffs);
        let dropped = poly.drop_to(2);
        poly.truncate_limbs(2, Arc::new(basis.prefix(2)));
        assert_eq!(poly.flat(), dropped.flat());
        assert_eq!(poly.limb_count(), 2);
    }

    #[test]
    #[should_panic(expected = "pointwise product requires evaluation")]
    fn pointwise_mul_rejects_coeff_rep() {
        let basis = q_basis(2);
        let coeffs = vec![1i64; N];
        let mut a = RnsPoly::from_signed_coeffs(basis.clone(), &coeffs);
        let b = RnsPoly::from_signed_coeffs(basis, &coeffs);
        a.mul_assign_pointwise(&b);
    }

    #[test]
    fn inf_norm_of_constant() {
        let basis = q_basis(2);
        let mut coeffs = vec![0i64; N];
        coeffs[0] = -12345;
        let poly = RnsPoly::from_signed_coeffs(basis, &coeffs);
        assert_eq!(poly.inf_norm(), 12345.0);
    }
}
