//! RNS polynomials over `Z_Q[x]/(x^N + 1)` with explicit representation
//! tracking, plus the RNS basis-change ring operations of the MAD paper:
//! `ModUp` (Algorithm 1), `ModDown` (Algorithm 2), `Rescale` (the
//! `ModDown` specialization that drops one limb), and `PModUp`
//! (Algorithm 5, the free lift `x ↦ P·x` enabling linear functions in the
//! raised basis).
//!
//! Every operation documents its data-access pattern (limb-wise vs
//! slot-wise per Table 3); the `simfhe` crate charges costs for exactly
//! these patterns.

use crate::automorph::Automorphism;
use crate::bigint::{IBig, UBig};
use crate::rns::{BasisExtender, RnsBasis};
use std::fmt;
use std::sync::Arc;

/// Which domain a polynomial's limbs currently live in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Representation {
    /// Coefficient vector (required by slot-wise basis-change operations).
    Coefficient,
    /// NTT evaluations (required by pointwise multiplication).
    Evaluation,
}

/// A polynomial in `∏ Z_{q_i}[x]/(x^N + 1)`, stored limb-major.
#[derive(Clone)]
pub struct RnsPoly {
    basis: Arc<RnsBasis>,
    rep: Representation,
    limbs: Vec<Vec<u64>>,
}

impl fmt::Debug for RnsPoly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RnsPoly")
            .field("limbs", &self.limbs.len())
            .field("degree", &self.basis.degree())
            .field("rep", &self.rep)
            .finish()
    }
}

impl RnsPoly {
    /// The zero polynomial in the given representation.
    pub fn zero(basis: Arc<RnsBasis>, rep: Representation) -> Self {
        let n = basis.degree();
        let l = basis.len();
        Self {
            basis,
            rep,
            limbs: vec![vec![0u64; n]; l],
        }
    }

    /// Builds a polynomial from signed coefficients (coefficient
    /// representation), reducing each into every limb.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len()` differs from the ring degree.
    pub fn from_signed_coeffs(basis: Arc<RnsBasis>, coeffs: &[i64]) -> Self {
        assert_eq!(coeffs.len(), basis.degree(), "coefficient count mismatch");
        let limbs = basis
            .moduli()
            .iter()
            .map(|m| coeffs.iter().map(|&c| m.from_i64(c)).collect())
            .collect();
        Self {
            basis,
            rep: Representation::Coefficient,
            limbs,
        }
    }

    /// Builds a polynomial from pre-reduced limb data.
    ///
    /// # Panics
    ///
    /// Panics if the limb count or any limb length is inconsistent with the
    /// basis, or (in debug builds) if any residue is unreduced.
    pub fn from_limbs(
        basis: Arc<RnsBasis>,
        limbs: Vec<Vec<u64>>,
        rep: Representation,
    ) -> Self {
        assert_eq!(limbs.len(), basis.len(), "limb count mismatch");
        for (i, limb) in limbs.iter().enumerate() {
            assert_eq!(limb.len(), basis.degree(), "limb {i} length mismatch");
            debug_assert!(
                limb.iter().all(|&x| x < basis.modulus(i).value()),
                "limb {i} contains unreduced residues"
            );
        }
        Self { basis, rep, limbs }
    }

    /// The RNS basis.
    #[inline]
    pub fn basis(&self) -> &Arc<RnsBasis> {
        &self.basis
    }

    /// Current representation.
    #[inline]
    pub fn representation(&self) -> Representation {
        self.rep
    }

    /// Number of limbs `ℓ`.
    #[inline]
    pub fn limb_count(&self) -> usize {
        self.limbs.len()
    }

    /// Ring degree `N`.
    #[inline]
    pub fn degree(&self) -> usize {
        self.basis.degree()
    }

    /// Read access to limb `i`.
    #[inline]
    pub fn limb(&self, i: usize) -> &[u64] {
        &self.limbs[i]
    }

    /// Mutable access to limb `i` (caller must preserve reduction).
    #[inline]
    pub fn limb_mut(&mut self, i: usize) -> &mut Vec<u64> {
        &mut self.limbs[i]
    }

    /// Consumes the polynomial, returning its limbs.
    pub fn into_limbs(self) -> Vec<Vec<u64>> {
        self.limbs
    }

    fn assert_compatible(&self, other: &RnsPoly) {
        assert_eq!(self.rep, other.rep, "representation mismatch");
        assert_eq!(
            self.limbs.len(),
            other.limbs.len(),
            "limb count mismatch"
        );
        debug_assert!(
            self.basis
                .moduli()
                .iter()
                .zip(other.basis.moduli())
                .all(|(a, b)| a.value() == b.value()),
            "basis mismatch"
        );
    }

    /// Converts to evaluation representation in place (`ℓ` forward NTTs;
    /// limb-wise access pattern). No-op if already in evaluation form.
    pub fn to_eval(&mut self) {
        if self.rep == Representation::Evaluation {
            return;
        }
        for (i, limb) in self.limbs.iter_mut().enumerate() {
            self.basis.ntt_table(i).forward(limb);
        }
        self.rep = Representation::Evaluation;
    }

    /// Converts to coefficient representation in place (`ℓ` inverse NTTs;
    /// limb-wise access pattern). No-op if already in coefficient form.
    pub fn to_coeff(&mut self) {
        if self.rep == Representation::Coefficient {
            return;
        }
        for (i, limb) in self.limbs.iter_mut().enumerate() {
            self.basis.ntt_table(i).inverse(limb);
        }
        self.rep = Representation::Coefficient;
    }

    /// `self += other` (works in either representation; both operands must
    /// match).
    pub fn add_assign(&mut self, other: &RnsPoly) {
        self.assert_compatible(other);
        for (i, (dst, src)) in self.limbs.iter_mut().zip(&other.limbs).enumerate() {
            let m = self.basis.modulus(i);
            for (d, &s) in dst.iter_mut().zip(src) {
                *d = m.add(*d, s);
            }
        }
    }

    /// `self -= other`.
    pub fn sub_assign(&mut self, other: &RnsPoly) {
        self.assert_compatible(other);
        for (i, (dst, src)) in self.limbs.iter_mut().zip(&other.limbs).enumerate() {
            let m = self.basis.modulus(i);
            for (d, &s) in dst.iter_mut().zip(src) {
                *d = m.sub(*d, s);
            }
        }
    }

    /// `self = -self`.
    pub fn negate(&mut self) {
        for (i, limb) in self.limbs.iter_mut().enumerate() {
            let m = self.basis.modulus(i);
            for x in limb.iter_mut() {
                *x = m.neg(*x);
            }
        }
    }

    /// Pointwise product `self *= other`.
    ///
    /// # Panics
    ///
    /// Panics unless both polynomials are in evaluation representation.
    pub fn mul_assign_pointwise(&mut self, other: &RnsPoly) {
        assert_eq!(
            self.rep,
            Representation::Evaluation,
            "pointwise product requires evaluation representation"
        );
        self.assert_compatible(other);
        for (i, (dst, src)) in self.limbs.iter_mut().zip(&other.limbs).enumerate() {
            let m = self.basis.modulus(i);
            for (d, &s) in dst.iter_mut().zip(src) {
                *d = m.mul(*d, s);
            }
        }
    }

    /// Multiplies every limb by a (per-limb-reduced) scalar.
    pub fn mul_scalar_assign(&mut self, scalar: u64) {
        for (i, limb) in self.limbs.iter_mut().enumerate() {
            let m = self.basis.modulus(i);
            let s = m.reduce(scalar);
            let s_shoup = m.shoup(s);
            for x in limb.iter_mut() {
                *x = m.mul_shoup(*x, s, s_shoup);
            }
        }
    }

    /// Multiplies limb `i` by a scalar reduced mod `q_i`, one scalar per
    /// limb.
    ///
    /// # Panics
    ///
    /// Panics if `scalars.len() != self.limb_count()`.
    pub fn mul_scalar_per_limb_assign(&mut self, scalars: &[u64]) {
        assert_eq!(scalars.len(), self.limbs.len());
        for (i, limb) in self.limbs.iter_mut().enumerate() {
            let m = self.basis.modulus(i);
            let s = m.reduce(scalars[i]);
            let s_shoup = m.shoup(s);
            for x in limb.iter_mut() {
                *x = m.mul_shoup(*x, s, s_shoup);
            }
        }
    }

    /// Applies a Galois automorphism, producing a new polynomial in the same
    /// representation.
    pub fn automorphism(&self, auto: &Automorphism) -> RnsPoly {
        let mut out = RnsPoly::zero(self.basis.clone(), self.rep);
        for i in 0..self.limbs.len() {
            match self.rep {
                Representation::Coefficient => auto.apply_coeff(
                    &self.limbs[i],
                    &mut out.limbs[i],
                    self.basis.modulus(i).value(),
                ),
                Representation::Evaluation => {
                    auto.apply_eval(&self.limbs[i], &mut out.limbs[i])
                }
            }
        }
        out
    }

    /// Drops trailing limbs, restricting to the first `keep` limbs of the
    /// basis (a plain basis restriction — no division; contrast with
    /// [`rescale`]).
    ///
    /// # Panics
    ///
    /// Panics if `keep` is zero or exceeds the current limb count.
    pub fn drop_to(&self, keep: usize) -> RnsPoly {
        assert!(keep >= 1 && keep <= self.limbs.len());
        RnsPoly {
            basis: Arc::new(self.basis.prefix(keep)),
            rep: self.rep,
            limbs: self.limbs[..keep].to_vec(),
        }
    }

    /// CRT-reconstructs coefficient `k` to a centered big integer in
    /// `(−Q/2, Q/2]`. Requires coefficient representation.
    ///
    /// # Panics
    ///
    /// Panics in evaluation representation or if `k` is out of range.
    pub fn coeff_centered(&self, k: usize) -> IBig {
        assert_eq!(
            self.rep,
            Representation::Coefficient,
            "reconstruction requires coefficient representation"
        );
        let residues: Vec<u64> = self.limbs.iter().map(|l| l[k]).collect();
        let v = self.basis.crt_reconstruct(&residues);
        let q = self.basis.product();
        let half = q.shr(1);
        if v > half {
            let mut mag = q;
            mag.sub_assign(&v);
            IBig {
                negative: true,
                magnitude: mag,
            }
        } else {
            IBig {
                negative: false,
                magnitude: v,
            }
        }
    }

    /// Infinity norm of the centered coefficients, as `f64` (diagnostics and
    /// noise-budget tests).
    pub fn inf_norm(&self) -> f64 {
        (0..self.degree())
            .map(|k| self.coeff_centered(k).to_f64().abs())
            .fold(0.0, f64::max)
    }
}

/// `Rescale` (the paper's Table 2 column): divides by the last limb modulus
/// and drops that limb, keeping the scaling factor stable after a
/// multiplication.
///
/// Input and output are in evaluation representation. Internally: one iNTT
/// on the dropped limb (limb-wise), a centered reduction of that limb into
/// every remaining modulus (slot-wise in spirit, but single-source so it
/// streams), `ℓ−1` forward NTTs, and a pointwise subtract-and-scale.
///
/// # Panics
///
/// Panics unless `poly` is in evaluation representation with ≥ 2 limbs.
pub fn rescale(poly: &RnsPoly) -> RnsPoly {
    assert_eq!(
        poly.representation(),
        Representation::Evaluation,
        "rescale expects evaluation representation"
    );
    let l = poly.limb_count();
    assert!(l >= 2, "cannot rescale a single-limb polynomial");
    let n = poly.degree();
    let basis = poly.basis();
    let q_last = basis.modulus(l - 1);

    // iNTT the dropped limb.
    let mut last = poly.limb(l - 1).to_vec();
    basis.ntt_table(l - 1).inverse(&mut last);

    let new_basis = Arc::new(basis.prefix(l - 1));
    let mut out_limbs = Vec::with_capacity(l - 1);
    for i in 0..l - 1 {
        let qi = basis.modulus(i);
        let inv = qi
            .inv(qi.reduce(q_last.value()))
            .expect("limb moduli are coprime");
        let inv_shoup = qi.shoup(inv);
        // Centered image of the dropped limb in q_i.
        let mut conv: Vec<u64> = last.iter().map(|&c| qi.from_i64(q_last.to_centered(c))).collect();
        basis.ntt_table(i).forward(&mut conv);
        let src = poly.limb(i);
        let mut limb = vec![0u64; n];
        for k in 0..n {
            limb[k] = qi.mul_shoup(qi.sub(src[k], conv[k]), inv, inv_shoup);
        }
        out_limbs.push(limb);
    }
    RnsPoly::from_limbs(new_basis, out_limbs, Representation::Evaluation)
}

/// Precomputed constants for [`mod_down`]: dividing by `P = ∏ B'` after a
/// key switch in the raised basis `B ∪ B'`.
#[derive(Debug, Clone)]
pub struct ModDownContext {
    /// Extends residues from the special basis `B'` into `B`.
    extender: BasisExtender,
    /// `P^{-1} mod q_i` for each limb of `B`.
    p_inv: Vec<u64>,
    p_inv_shoup: Vec<u64>,
    q_len: usize,
    p_len: usize,
}

impl ModDownContext {
    /// Precomputes the `ModDown` constants for dropping `p_basis` from
    /// `q_basis ∪ p_basis`.
    pub fn new(q_basis: &RnsBasis, p_basis: &RnsBasis) -> Self {
        let extender = BasisExtender::new(p_basis, q_basis);
        let mut p_inv = Vec::with_capacity(q_basis.len());
        let mut p_inv_shoup = Vec::with_capacity(q_basis.len());
        for qi in q_basis.moduli() {
            let mut p_mod = 1u64;
            for pj in p_basis.moduli() {
                p_mod = qi.mul(p_mod, qi.reduce(pj.value()));
            }
            let inv = qi.inv(p_mod).expect("P coprime to q_i");
            p_inv.push(inv);
            p_inv_shoup.push(qi.shoup(inv));
        }
        Self {
            extender,
            p_inv,
            p_inv_shoup,
            q_len: q_basis.len(),
            p_len: p_basis.len(),
        }
    }
}

/// `ModDown` (Algorithm 2): given `x` over `B ∪ B'` (with the `B'` limbs
/// stored last), returns `⌊P^{-1}·x⌉` over `B`.
///
/// Input and output are in evaluation representation, matching the
/// algorithm as stated in the paper: the `B'` limbs are iNTT'd (limb-wise),
/// extended into `B` via `NewLimb` (slot-wise), NTT'd back (limb-wise), and
/// combined pointwise.
///
/// # Panics
///
/// Panics if `poly` is not in evaluation representation or its limb count
/// does not equal `q_len + p_len` of the context.
pub fn mod_down(poly: &RnsPoly, ctx: &ModDownContext) -> RnsPoly {
    assert_eq!(
        poly.representation(),
        Representation::Evaluation,
        "mod_down expects evaluation representation"
    );
    assert_eq!(
        poly.limb_count(),
        ctx.q_len + ctx.p_len,
        "limb count must equal |B| + |B'|"
    );
    let n = poly.degree();
    let basis = poly.basis();

    // Step 1: iNTT the special limbs (limb-wise).
    let mut special_coeff: Vec<Vec<u64>> = (0..ctx.p_len)
        .map(|j| {
            let mut limb = poly.limb(ctx.q_len + j).to_vec();
            basis.ntt_table(ctx.q_len + j).inverse(&mut limb);
            limb
        })
        .collect();

    // Centering trick: shift each special residue so the reconstruction
    // error is centered, halving the rounding noise. We add P/2 before
    // conversion and subtract (P/2 mod q_i) after — equivalent to rounding
    // rather than flooring.
    let mut half_p = UBig::product(
        &(0..ctx.p_len)
            .map(|j| basis.modulus(ctx.q_len + j).value())
            .collect::<Vec<_>>(),
    );
    half_p = half_p.shr(1);
    for (j, limb) in special_coeff.iter_mut().enumerate() {
        let pj = basis.modulus(ctx.q_len + j);
        let half = pj.reduce(half_p.rem_u64(pj.value()));
        for x in limb.iter_mut() {
            *x = pj.add(*x, half);
        }
    }

    // Step 2: NewLimb into each q_i (slot-wise).
    let refs: Vec<&[u64]> = special_coeff.iter().map(|l| l.as_slice()).collect();
    let mut converted = vec![vec![0u64; n]; ctx.q_len];
    ctx.extender.extend_polys(&refs, &mut converted);

    // Step 3: NTT the converted limbs, combine (limb-wise).
    let new_basis = Arc::new(basis.prefix(ctx.q_len));
    let mut out_limbs = Vec::with_capacity(ctx.q_len);
    for i in 0..ctx.q_len {
        let qi = basis.modulus(i);
        let half = qi.reduce(half_p.rem_u64(qi.value()));
        let mut conv = std::mem::take(&mut converted[i]);
        for x in conv.iter_mut() {
            *x = qi.sub(*x, half);
        }
        basis.ntt_table(i).forward(&mut conv);
        let src = poly.limb(i);
        let mut limb = vec![0u64; n];
        for k in 0..n {
            limb[k] = qi.mul_shoup(
                qi.sub(src[k], conv[k]),
                ctx.p_inv[i],
                ctx.p_inv_shoup[i],
            );
        }
        out_limbs.push(limb);
    }
    RnsPoly::from_limbs(new_basis, out_limbs, Representation::Evaluation)
}

/// `PModUp` (Algorithm 5): the free lift `x ↦ P·x` from `B` to `B ∪ B'`.
///
/// Multiplies each existing limb by `[P]_{q_i}` and appends zero limbs for
/// `B'` (since `P·x ≡ 0 mod p_j`). Unlike `ModUp` this needs **no NTTs and
/// no slot-wise pass** — the paper's key observation enabling linear
/// functions in the raised basis. Works in either representation.
pub fn pmod_up(poly: &RnsPoly, p_basis: &RnsBasis) -> RnsPoly {
    let basis = poly.basis();
    let n = poly.degree();
    let joined = Arc::new(basis.concat(p_basis));
    let mut limbs = Vec::with_capacity(joined.len());
    for i in 0..basis.len() {
        let qi = basis.modulus(i);
        let mut p_mod = 1u64;
        for pj in p_basis.moduli() {
            p_mod = qi.mul(p_mod, qi.reduce(pj.value()));
        }
        let p_shoup = qi.shoup(p_mod);
        limbs.push(
            poly.limb(i)
                .iter()
                .map(|&x| qi.mul_shoup(x, p_mod, p_shoup))
                .collect(),
        );
    }
    for _ in 0..p_basis.len() {
        limbs.push(vec![0u64; n]);
    }
    RnsPoly::from_limbs(joined, limbs, poly.representation())
}

/// `ModUp` (Algorithm 1): extends `x` from `B` to `B ∪ B'`, preserving the
/// representative `x ∈ [0, Q)` exactly (the extender's float correction
/// removes the fast-conversion excess).
///
/// Input/output in evaluation representation: iNTT all source limbs
/// (limb-wise), `NewLimb` into `B'` (slot-wise), NTT the new limbs
/// (limb-wise). The source limbs are passed through untouched (line 4 of
/// the algorithm: no NTT needed on input limbs).
///
/// # Panics
///
/// Panics if `poly` is not in evaluation representation.
pub fn mod_up(poly: &RnsPoly, p_basis: &RnsBasis, extender: &BasisExtender) -> RnsPoly {
    assert_eq!(
        poly.representation(),
        Representation::Evaluation,
        "mod_up expects evaluation representation"
    );
    assert_eq!(extender.source_len(), poly.limb_count());
    assert_eq!(extender.target_len(), p_basis.len());
    let n = poly.degree();
    let basis = poly.basis();

    let coeff_limbs: Vec<Vec<u64>> = (0..poly.limb_count())
        .map(|i| {
            let mut limb = poly.limb(i).to_vec();
            basis.ntt_table(i).inverse(&mut limb);
            limb
        })
        .collect();
    let refs: Vec<&[u64]> = coeff_limbs.iter().map(|l| l.as_slice()).collect();
    let mut new_limbs = vec![vec![0u64; n]; p_basis.len()];
    extender.extend_polys(&refs, &mut new_limbs);
    for (j, limb) in new_limbs.iter_mut().enumerate() {
        p_basis.ntt_table(j).forward(limb);
    }
    let joined = Arc::new(basis.concat(p_basis));
    let mut limbs = Vec::with_capacity(joined.len());
    for i in 0..poly.limb_count() {
        limbs.push(poly.limb(i).to_vec());
    }
    limbs.extend(new_limbs);
    RnsPoly::from_limbs(joined, limbs, Representation::Evaluation)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prime::{generate_ntt_primes, generate_ntt_primes_excluding};

    const N: usize = 32;

    fn q_basis(limbs: usize) -> Arc<RnsBasis> {
        Arc::new(RnsBasis::new(&generate_ntt_primes(limbs, 30, N), N).unwrap())
    }

    fn p_basis_for(q: &RnsBasis, limbs: usize) -> RnsBasis {
        let q_primes: Vec<u64> = q.moduli().iter().map(|m| m.value()).collect();
        RnsBasis::new(
            &generate_ntt_primes_excluding(limbs, 31, N, &q_primes),
            N,
        )
        .unwrap()
    }

    #[test]
    fn signed_roundtrip_through_crt() {
        let basis = q_basis(3);
        let coeffs: Vec<i64> = (0..N as i64).map(|i| i * 1000 - 16000).collect();
        let poly = RnsPoly::from_signed_coeffs(basis, &coeffs);
        for k in 0..N {
            assert_eq!(poly.coeff_centered(k).to_f64(), coeffs[k] as f64);
        }
    }

    #[test]
    fn rep_switch_roundtrip() {
        let basis = q_basis(2);
        let coeffs: Vec<i64> = (0..N as i64).map(|i| i - 7).collect();
        let mut poly = RnsPoly::from_signed_coeffs(basis, &coeffs);
        let orig = poly.clone();
        poly.to_eval();
        assert_eq!(poly.representation(), Representation::Evaluation);
        poly.to_coeff();
        for i in 0..poly.limb_count() {
            assert_eq!(poly.limb(i), orig.limb(i));
        }
    }

    #[test]
    fn arithmetic_matches_integer_semantics() {
        let basis = q_basis(2);
        let a: Vec<i64> = (0..N as i64).map(|i| 3 * i + 1).collect();
        let b: Vec<i64> = (0..N as i64).map(|i| -2 * i + 5).collect();
        let mut pa = RnsPoly::from_signed_coeffs(basis.clone(), &a);
        let pb = RnsPoly::from_signed_coeffs(basis, &b);
        pa.add_assign(&pb);
        for k in 0..N {
            assert_eq!(pa.coeff_centered(k).to_f64(), (a[k] + b[k]) as f64);
        }
        pa.sub_assign(&pb);
        pa.negate();
        for k in 0..N {
            assert_eq!(pa.coeff_centered(k).to_f64(), -a[k] as f64);
        }
    }

    #[test]
    fn pointwise_mul_is_negacyclic_convolution() {
        let basis = q_basis(2);
        // a = x^{N-1}, b = x² → product = -x.
        let mut ac = vec![0i64; N];
        ac[N - 1] = 1;
        let mut bc = vec![0i64; N];
        bc[2] = 1;
        let mut a = RnsPoly::from_signed_coeffs(basis.clone(), &ac);
        let mut b = RnsPoly::from_signed_coeffs(basis, &bc);
        a.to_eval();
        b.to_eval();
        a.mul_assign_pointwise(&b);
        a.to_coeff();
        for k in 0..N {
            let expect = if k == 1 { -1.0 } else { 0.0 };
            assert_eq!(a.coeff_centered(k).to_f64(), expect, "k={k}");
        }
    }

    #[test]
    fn scalar_multiplication() {
        let basis = q_basis(3);
        let coeffs: Vec<i64> = (0..N as i64).map(|i| i + 1).collect();
        let mut poly = RnsPoly::from_signed_coeffs(basis, &coeffs);
        poly.mul_scalar_assign(7);
        for k in 0..N {
            assert_eq!(poly.coeff_centered(k).to_f64(), (7 * coeffs[k]) as f64);
        }
    }

    #[test]
    fn rescale_divides_by_last_modulus() {
        let basis = q_basis(3);
        let q_last = basis.modulus(2).value();
        // Pick coefficients that are exact multiples of q_last so the
        // division is exact.
        let coeffs: Vec<i64> = (0..N as i64).map(|i| (i - 4) * q_last as i64).collect();
        let mut poly = RnsPoly::from_signed_coeffs(basis, &coeffs);
        poly.to_eval();
        let mut scaled = rescale(&poly);
        assert_eq!(scaled.limb_count(), 2);
        scaled.to_coeff();
        for k in 0..N {
            assert_eq!(
                scaled.coeff_centered(k).to_f64(),
                (k as i64 - 4) as f64,
                "k={k}"
            );
        }
    }

    #[test]
    fn rescale_rounding_error_is_small() {
        let basis = q_basis(3);
        let q_last = basis.modulus(2).value() as i64;
        let coeffs: Vec<i64> = (0..N as i64).map(|i| i * q_last + (i % 17) - 8).collect();
        let mut poly = RnsPoly::from_signed_coeffs(basis, &coeffs);
        poly.to_eval();
        let mut scaled = rescale(&poly);
        scaled.to_coeff();
        for k in 0..N {
            let expect = k as f64; // remainder (±8) / q_last rounds to 0 or ±1
            let got = scaled.coeff_centered(k).to_f64();
            assert!((got - expect).abs() <= 1.0, "k={k}: {got} vs {expect}");
        }
    }

    #[test]
    fn pmod_up_scales_by_p_exactly() {
        let q = q_basis(2);
        let p = p_basis_for(&q, 2);
        let p_product: f64 = p.moduli().iter().map(|m| m.value() as f64).product();
        let coeffs: Vec<i64> = (0..N as i64).map(|i| i - 10).collect();
        let poly = RnsPoly::from_signed_coeffs(q, &coeffs);
        let lifted = pmod_up(&poly, &p);
        assert_eq!(lifted.limb_count(), 4);
        for k in 0..N {
            let got = lifted.coeff_centered(k).to_f64();
            let expect = coeffs[k] as f64 * p_product;
            let rel = if expect == 0.0 {
                got.abs()
            } else {
                ((got - expect) / expect).abs()
            };
            assert!(rel < 1e-9, "k={k}: {got} vs {expect}");
        }
    }

    #[test]
    fn mod_down_inverts_pmod_up() {
        let q = q_basis(3);
        let p = p_basis_for(&q, 2);
        let ctx = ModDownContext::new(&q, &p);
        let coeffs: Vec<i64> = (0..N as i64).map(|i| 5 * i - 37).collect();
        let mut poly = RnsPoly::from_signed_coeffs(q, &coeffs);
        poly.to_eval();
        let mut lifted = pmod_up(&poly, &p);
        lifted.to_eval(); // already eval; no-op (pmod_up preserves rep)
        let mut lowered = mod_down(&lifted, &ctx);
        lowered.to_coeff();
        for k in 0..N {
            let got = lowered.coeff_centered(k).to_f64();
            assert!(
                (got - coeffs[k] as f64).abs() <= 1.0,
                "k={k}: {got} vs {}",
                coeffs[k]
            );
        }
    }

    #[test]
    fn mod_up_preserves_value_mod_new_primes() {
        let q = q_basis(2);
        let p = p_basis_for(&q, 2);
        let ext = BasisExtender::new(&q, &p);
        // Small positive coefficients: no conversion excess, exact match.
        let coeffs: Vec<i64> = (0..N as i64).map(|i| i + 1).collect();
        let mut poly = RnsPoly::from_signed_coeffs(q.clone(), &coeffs);
        poly.to_eval();
        let mut up = mod_up(&poly, &p, &ext);
        assert_eq!(up.limb_count(), 4);
        up.to_coeff();
        for j in 0..p.len() {
            let pj = p.modulus(j);
            for k in 0..N {
                assert_eq!(
                    up.limb(2 + j)[k],
                    pj.from_i64(coeffs[k]),
                    "limb {j} coeff {k}"
                );
            }
        }
    }

    #[test]
    fn automorphism_on_rns_poly_matches_signed_semantics() {
        let basis = q_basis(2);
        let table = basis.ntt_table(0).clone();
        let auto = Automorphism::new(5, &table);
        let coeffs: Vec<i64> = (0..N as i64).map(|i| i - 3).collect();
        let poly = RnsPoly::from_signed_coeffs(basis, &coeffs);
        let out = poly.automorphism(&auto);
        // x^1 maps to x^5 (sign positive since 5 < N).
        assert_eq!(out.coeff_centered(5).to_f64(), coeffs[1] as f64);
    }

    #[test]
    fn drop_to_restricts_basis() {
        let basis = q_basis(3);
        let coeffs: Vec<i64> = (0..N as i64).collect();
        let poly = RnsPoly::from_signed_coeffs(basis, &coeffs);
        let dropped = poly.drop_to(2);
        assert_eq!(dropped.limb_count(), 2);
        assert_eq!(dropped.limb(0), poly.limb(0));
    }

    #[test]
    #[should_panic(expected = "pointwise product requires evaluation")]
    fn pointwise_mul_rejects_coeff_rep() {
        let basis = q_basis(2);
        let coeffs = vec![1i64; N];
        let mut a = RnsPoly::from_signed_coeffs(basis.clone(), &coeffs);
        let b = RnsPoly::from_signed_coeffs(basis, &coeffs);
        a.mul_assign_pointwise(&b);
    }

    #[test]
    fn inf_norm_of_constant() {
        let basis = q_basis(2);
        let mut coeffs = vec![0i64; N];
        coeffs[0] = -12345;
        let poly = RnsPoly::from_signed_coeffs(basis, &coeffs);
        assert_eq!(poly.inf_norm(), 12345.0);
    }
}
