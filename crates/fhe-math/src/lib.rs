#![warn(missing_docs)]
// Hot kernels index several slices in lockstep (limbs, roots, outputs);
// the explicit-index form mirrors the paper's pseudocode and stays clear.
#![allow(clippy::needless_range_loop)]

//! Number-theoretic substrate for RNS-CKKS fully homomorphic encryption.
//!
//! This crate provides the low-level building blocks that the `ckks` scheme
//! and the `simfhe` cost model are calibrated against:
//!
//! - [`modular`]: arithmetic in 64-bit prime fields (Barrett reduction,
//!   Shoup multiplication, modular inverses and exponentiation).
//! - [`backend`]: the pluggable [`KernelBackend`] trait routing every hot
//!   kernel (NTT butterflies, pointwise modmul, fused basis extension)
//!   through a per-context implementation — the fully-reduced scalar
//!   reference and a lazy-reduction blocked variant that LLVM
//!   auto-vectorizes.
//! - [`prime`]: deterministic Miller–Rabin primality testing and generation
//!   of NTT-friendly primes (`q ≡ 1 mod 2N`).
//! - [`ntt`]: negacyclic number-theoretic transforms over
//!   `Z_q[x]/(x^N + 1)`, the *limb-wise* data-access-pattern kernels of the
//!   MAD paper (Table 3).
//! - [`rns`]: residue-number-system bases and the fast basis-extension
//!   (`NewLimb`, Eq. 1 of the paper), the *slot-wise* kernels.
//! - [`poly`]: RNS polynomials with explicit coefficient/evaluation
//!   representation tracking, plus the `ModUp`/`ModDown`/`Rescale`/`PModUp`
//!   ring operations (Algorithms 1, 2 and 5 of the paper).
//! - [`automorph`]: Galois automorphisms `x ↦ x^k` in both representations,
//!   used by `Rotate` and `Conjugate`.
//! - [`cfft`]: the complex "special" FFT over the canonical embedding used
//!   by the CKKS encoder.
//! - [`bigint`]: a minimal arbitrary-precision unsigned integer used for CRT
//!   reconstruction in decoding and in tests.
//! - [`sampling`]: secret/noise distributions (ternary, centered binomial,
//!   rounded Gaussian).
//! - [`scratch`]: the reusable buffer pool behind the allocation-free hot
//!   paths.
//! - [`parallel`]: limb-level multithreading helpers over flat limb-major
//!   buffers (feature `parallel`, on by default; bit-identical to serial).
//! - [`telemetry`]: feature-gated op-count/traffic counters and
//!   measurement spans (feature `telemetry`, off by default; no-ops when
//!   disabled) used to cross-validate the `simfhe` cost model.
//!
//! # Example
//!
//! Multiply two polynomials in `Z_q[x]/(x^8 + 1)` via the NTT:
//!
//! ```
//! use fhe_math::{ntt::NttTable, prime::generate_ntt_primes};
//!
//! let q = generate_ntt_primes(1, 40, 8)[0];
//! let table = NttTable::new(q, 8).expect("NTT-friendly prime");
//! let mut a = vec![1u64, 2, 3, 4, 5, 6, 7, 8];
//! let mut b = vec![2u64, 0, 0, 0, 0, 0, 0, 0];
//! table.forward(&mut a);
//! table.forward(&mut b);
//! let mut c: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| table.modulus().mul(x, y)).collect();
//! table.inverse(&mut c);
//! assert_eq!(c, vec![2, 4, 6, 8, 10, 12, 14, 16]);
//! ```

pub mod automorph;
pub mod backend;
pub mod bigint;
pub mod cfft;
pub mod modular;
pub mod ntt;
pub mod parallel;
pub mod poly;
pub mod prime;
pub mod rns;
pub mod sampling;
pub mod scratch;
pub mod telemetry;

pub use backend::{BackendKind, KernelBackend, ShoupPair};
pub use modular::Modulus;
pub use ntt::NttTable;
pub use poly::{Representation, RnsPoly};
pub use rns::RnsBasis;
pub use scratch::{ScratchPool, ScratchStats};
