//! Secret-key and noise distributions for RLWE-based schemes.
//!
//! CKKS key generation samples the secret from a ternary distribution and
//! encryption noise from a centered discrete Gaussian (σ ≈ 3.2 per the
//! Homomorphic Encryption Standard). Uniform ring elements are used for the
//! `a` component of ciphertexts and switching keys — the component the MAD
//! key-compression optimization replaces with a PRNG seed.

use rand::distributions::{Distribution, Uniform};
use rand::Rng;

/// Standard deviation of the encryption noise mandated by the HE standard.
pub const NOISE_STDDEV: f64 = 3.2;

/// Samples a ternary secret polynomial with coefficients in `{-1, 0, 1}`
/// (as signed integers), each nonzero with probability 2/3.
pub fn sample_ternary<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<i64> {
    let die = Uniform::new(0u8, 3);
    (0..n)
        .map(|_| match die.sample(rng) {
            0 => -1,
            1 => 0,
            _ => 1,
        })
        .collect()
}

/// Samples a ternary secret with exactly `hamming_weight` nonzero
/// coefficients (sparse secrets, as used by bootstrapping-oriented
/// parameter sets).
///
/// # Panics
///
/// Panics if `hamming_weight > n`.
pub fn sample_sparse_ternary<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    hamming_weight: usize,
) -> Vec<i64> {
    assert!(hamming_weight <= n, "hamming weight exceeds degree");
    let mut s = vec![0i64; n];
    let mut placed = 0;
    while placed < hamming_weight {
        let idx = rng.gen_range(0..n);
        if s[idx] == 0 {
            s[idx] = if rng.gen::<bool>() { 1 } else { -1 };
            placed += 1;
        }
    }
    s
}

/// Samples a rounded centered Gaussian with standard deviation
/// [`NOISE_STDDEV`], truncated at six standard deviations.
pub fn sample_gaussian<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<i64> {
    let bound = (6.0 * NOISE_STDDEV).ceil() as i64;
    (0..n)
        .map(|_| {
            loop {
                // Box–Muller.
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                let v = (z * NOISE_STDDEV).round() as i64;
                if v.abs() <= bound {
                    return v;
                }
            }
        })
        .collect()
}

/// Samples a uniform polynomial with coefficients in `[0, q)` for each limb
/// modulus in `moduli`, returned as a flat limb-major buffer (limb `i` =
/// `out[i·n .. (i+1)·n]`).
///
/// Sampling order is limb-major and sequential in the RNG stream, so a
/// seeded generator reproduces the exact buffer — the property the MAD
/// key-compression optimization relies on to regenerate `a` components
/// from a 32-byte seed.
pub fn sample_uniform_flat<R: Rng + ?Sized>(rng: &mut R, moduli: &[u64], n: usize) -> Vec<u64> {
    let mut out = Vec::with_capacity(moduli.len() * n);
    for &q in moduli {
        let die = Uniform::new(0u64, q);
        out.extend((0..n).map(|_| die.sample(rng)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ternary_values_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        let s = sample_ternary(&mut rng, 4096);
        assert!(s.iter().all(|&x| (-1..=1).contains(&x)));
        // Each value should occur with roughly 1/3 probability.
        let zeros = s.iter().filter(|&&x| x == 0).count();
        assert!((zeros as f64 / 4096.0 - 1.0 / 3.0).abs() < 0.05);
    }

    #[test]
    fn sparse_ternary_exact_weight() {
        let mut rng = StdRng::seed_from_u64(11);
        let s = sample_sparse_ternary(&mut rng, 1024, 64);
        assert_eq!(s.iter().filter(|&&x| x != 0).count(), 64);
    }

    #[test]
    #[should_panic(expected = "hamming weight")]
    fn sparse_ternary_rejects_overweight() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = sample_sparse_ternary(&mut rng, 8, 9);
    }

    #[test]
    fn gaussian_moments_plausible() {
        let mut rng = StdRng::seed_from_u64(3);
        let e = sample_gaussian(&mut rng, 1 << 14);
        let n = e.len() as f64;
        let mean = e.iter().sum::<i64>() as f64 / n;
        let var = e.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / n;
        assert!(mean.abs() < 0.2, "mean {mean} too far from 0");
        assert!(
            (var.sqrt() - NOISE_STDDEV).abs() < 0.3,
            "stddev {} too far from {NOISE_STDDEV}",
            var.sqrt()
        );
        let bound = (6.0 * NOISE_STDDEV).ceil() as i64;
        assert!(e.iter().all(|&x| x.abs() <= bound));
    }

    #[test]
    fn uniform_limbs_respect_moduli() {
        let mut rng = StdRng::seed_from_u64(5);
        let moduli = [97u64, 65537, (1 << 30) + 3];
        let flat = sample_uniform_flat(&mut rng, &moduli, 512);
        assert_eq!(flat.len(), 3 * 512);
        for (i, limb) in flat.chunks_exact(512).enumerate() {
            assert!(limb.iter().all(|&x| x < moduli[i]));
        }
    }

    #[test]
    fn uniform_flat_is_seed_reproducible() {
        let moduli = [(1u64 << 30) + 3, (1 << 31) + 11];
        let a = sample_uniform_flat(&mut StdRng::seed_from_u64(99), &moduli, 64);
        let b = sample_uniform_flat(&mut StdRng::seed_from_u64(99), &moduli, 64);
        assert_eq!(a, b);
    }

    #[test]
    fn sampling_is_deterministic_under_seed() {
        let a = sample_ternary(&mut StdRng::seed_from_u64(42), 64);
        let b = sample_ternary(&mut StdRng::seed_from_u64(42), 64);
        assert_eq!(a, b);
    }
}
