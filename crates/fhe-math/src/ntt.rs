//! Negacyclic number-theoretic transforms over `Z_q[x]/(x^N + 1)`.
//!
//! The NTT is the *limb-wise* kernel of the MAD paper (Table 3): it touches
//! all `N` slots of a single limb and is independent across limbs. Forward
//! transforms use a Cooley–Tukey decimation-in-time network producing
//! bit-reversed output; inverse transforms use Gentleman–Sande consuming
//! bit-reversed input, so a forward/inverse pair is an identity on
//! naturally-ordered coefficient vectors.
//!
//! Twiddle factors are powers of a primitive `2N`-th root of unity `ψ`
//! folded into the butterflies, which implements the negacyclic wraparound
//! (multiplication modulo `x^N + 1` rather than `x^N - 1`) without separate
//! pre/post scaling passes. All butterfly constants carry precomputed Shoup
//! companions.

use crate::backend::{self, KernelBackend, ShoupPair};
use crate::modular::Modulus;
use crate::prime::{is_prime, primitive_root_of_unity};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Global counters of limb transforms executed, for cross-validating the
/// `simfhe` cost model against the functional library (the paper's op
/// accounting is per limb-NTT). Negligible overhead: one relaxed atomic
/// increment per whole-limb transform.
pub mod counters {
    use super::*;

    pub(super) static FORWARD: AtomicU64 = AtomicU64::new(0);
    pub(super) static INVERSE: AtomicU64 = AtomicU64::new(0);

    /// Forward limb-NTTs executed since the last [`reset`].
    pub fn forward_count() -> u64 {
        FORWARD.load(Ordering::Relaxed)
    }

    /// Inverse limb-NTTs executed since the last [`reset`].
    pub fn inverse_count() -> u64 {
        INVERSE.load(Ordering::Relaxed)
    }

    /// Resets both counters to zero.
    ///
    /// Note: the counters are process-global; tests that use them should
    /// not run concurrently with other NTT-heavy tests (use a dedicated
    /// integration-test binary, which Cargo runs in its own process).
    pub fn reset() {
        FORWARD.store(0, Ordering::Relaxed);
        INVERSE.store(0, Ordering::Relaxed);
    }
}

/// Precomputed tables for the negacyclic NTT of a fixed `(q, N)` pair.
///
/// # Example
///
/// ```
/// use fhe_math::{ntt::NttTable, prime::generate_ntt_primes};
/// let q = generate_ntt_primes(1, 30, 16)[0];
/// let t = NttTable::new(q, 16).unwrap();
/// let mut data: Vec<u64> = (0..16).collect();
/// let original = data.clone();
/// t.forward(&mut data);
/// assert_ne!(data, original);
/// t.inverse(&mut data);
/// assert_eq!(data, original);
/// ```
#[derive(Clone)]
pub struct NttTable {
    modulus: Modulus,
    n: usize,
    log_n: u32,
    /// ψ^br(i) for CT forward butterflies, bit-reverse ordered, with Shoup
    /// companions.
    fwd_roots: Vec<ShoupPair>,
    /// ψ^{-br(i)} for GS inverse butterflies.
    inv_roots: Vec<ShoupPair>,
    /// N^{-1} mod q for the final inverse scaling.
    n_inv: ShoupPair,
    /// ψ, kept for callers that need evaluation-point bookkeeping.
    psi: u64,
    /// The kernel implementation butterflies dispatch to.
    backend: Arc<dyn KernelBackend>,
}

impl fmt::Debug for NttTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NttTable")
            .field("q", &self.modulus.value())
            .field("n", &self.n)
            .finish()
    }
}

/// Error constructing an [`NttTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NttError {
    /// `n` is not a power of two (or is < 2).
    InvalidDegree(usize),
    /// `q` is not prime or `q ≢ 1 (mod 2n)`.
    UnsupportedModulus(u64),
}

impl fmt::Display for NttError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NttError::InvalidDegree(n) => write!(f, "degree {n} is not a power of two ≥ 2"),
            NttError::UnsupportedModulus(q) => {
                write!(f, "modulus {q} is not an NTT-friendly prime")
            }
        }
    }
}

impl std::error::Error for NttError {}

#[inline]
fn bit_reverse(x: usize, bits: u32) -> usize {
    x.reverse_bits() >> (usize::BITS - bits)
}

impl NttTable {
    /// Builds NTT tables for `Z_q[x]/(x^n + 1)`.
    ///
    /// # Errors
    ///
    /// Returns [`NttError`] if `n` is not a power of two or `q` is not a
    /// prime with `q ≡ 1 (mod 2n)`.
    pub fn new(q: u64, n: usize) -> Result<Self, NttError> {
        Self::with_backend(q, n, backend::default_backend())
    }

    /// Builds NTT tables that dispatch butterflies to an explicit kernel
    /// backend (see [`crate::backend`]); [`NttTable::new`] uses the
    /// process-default backend.
    ///
    /// # Errors
    ///
    /// Returns [`NttError`] if `n` is not a power of two or `q` is not a
    /// prime with `q ≡ 1 (mod 2n)`.
    pub fn with_backend(
        q: u64,
        n: usize,
        backend: Arc<dyn KernelBackend>,
    ) -> Result<Self, NttError> {
        if !n.is_power_of_two() || n < 2 {
            return Err(NttError::InvalidDegree(n));
        }
        let modulus = Modulus::new(q).map_err(|_| NttError::UnsupportedModulus(q))?;
        if !is_prime(q) || !(q - 1).is_multiple_of(2 * n as u64) {
            return Err(NttError::UnsupportedModulus(q));
        }
        let log_n = n.trailing_zeros();
        let psi = primitive_root_of_unity(&modulus, 2 * n as u64);
        let psi_inv = modulus.inv(psi).expect("psi invertible");

        let mut fwd_roots = vec![0u64; n];
        let mut inv_roots = vec![0u64; n];
        let mut pow_f = 1u64;
        let mut pow_i = 1u64;
        let mut fwd_natural = vec![0u64; n];
        let mut inv_natural = vec![0u64; n];
        for i in 0..n {
            fwd_natural[i] = pow_f;
            inv_natural[i] = pow_i;
            pow_f = modulus.mul(pow_f, psi);
            pow_i = modulus.mul(pow_i, psi_inv);
        }
        for i in 0..n {
            let r = bit_reverse(i, log_n);
            fwd_roots[i] = fwd_natural[r];
            inv_roots[i] = inv_natural[r];
        }
        let fwd_roots = ShoupPair::table(&modulus, &fwd_roots);
        let inv_roots = ShoupPair::table(&modulus, &inv_roots);
        let n_inv = modulus.inv(n as u64).expect("n invertible mod prime q");
        let n_inv = ShoupPair::new(&modulus, n_inv);
        Ok(Self {
            modulus,
            n,
            log_n,
            fwd_roots,
            inv_roots,
            n_inv,
            psi,
            backend,
        })
    }

    /// The modulus this table transforms over.
    #[inline]
    pub fn modulus(&self) -> &Modulus {
        &self.modulus
    }

    /// Transform size `N`.
    #[inline]
    pub fn size(&self) -> usize {
        self.n
    }

    /// The primitive `2N`-th root of unity used as the negacyclic twist.
    #[inline]
    pub fn psi(&self) -> u64 {
        self.psi
    }

    /// The kernel backend this table dispatches butterflies to.
    #[inline]
    pub fn backend(&self) -> &Arc<dyn KernelBackend> {
        &self.backend
    }

    /// Forward twiddles `ψ^br(i)` in bit-reversed order, with Shoup
    /// companions (consumed by [`crate::backend::KernelBackend`] impls).
    #[inline]
    pub fn forward_roots(&self) -> &[ShoupPair] {
        &self.fwd_roots
    }

    /// Inverse twiddles `ψ^{-br(i)}` with Shoup companions.
    #[inline]
    pub fn inverse_roots(&self) -> &[ShoupPair] {
        &self.inv_roots
    }

    /// `N^{-1} mod q` with its Shoup companion, for the final inverse
    /// scaling pass.
    #[inline]
    pub fn n_inv(&self) -> ShoupPair {
        self.n_inv
    }

    /// In-place forward negacyclic NTT (coefficient → evaluation,
    /// bit-reversed output order).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.size()`.
    pub fn forward(&self, data: &mut [u64]) {
        assert_eq!(data.len(), self.n, "NTT size mismatch");
        // Counters and telemetry are recorded here — at the dispatch site,
        // in logical units — so every backend reports identical counts.
        counters::FORWARD.fetch_add(1, Ordering::Relaxed);
        crate::telemetry::record_ntt(true, self.butterfly_count(), self.n as u64);
        self.backend.ntt_forward(self, data);
    }

    /// In-place inverse negacyclic NTT (evaluation → coefficient, consumes
    /// bit-reversed input order, emits natural order).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.size()`.
    pub fn inverse(&self, data: &mut [u64]) {
        assert_eq!(data.len(), self.n, "NTT size mismatch");
        counters::INVERSE.fetch_add(1, Ordering::Relaxed);
        crate::telemetry::record_ntt(false, self.butterfly_count(), self.n as u64);
        // The final n_inv normalization pass below is n extra multiplies
        // beyond the model's butterfly count (an optimized kernel folds it
        // into the last stage); record it so measured counts stay honest.
        crate::telemetry::record_ops(self.n as u64, 0);
        self.backend.ntt_inverse(self, data);
    }

    /// Number of butterfly operations in one transform: `(N/2)·log2 N`.
    ///
    /// This is the unit the `simfhe` cost model charges per NTT; each
    /// butterfly is one modular multiplication plus two additions.
    pub fn butterfly_count(&self) -> u64 {
        (self.n as u64 / 2) * self.log_n as u64
    }

    /// The exponent `e(pos)` such that the evaluation stored at `pos` after
    /// [`NttTable::forward`] is `p(ψ^{e})`, with `e` odd and taken mod `2N`.
    ///
    /// Used to build Galois-automorphism permutations in the evaluation
    /// representation.
    pub fn exponent_at(&self, pos: usize) -> u64 {
        debug_assert!(pos < self.n);
        // CT with our root ordering places p(ψ^{2·br(pos)+1}) at `pos`.
        (2 * bit_reverse(pos, self.log_n) as u64 + 1) % (2 * self.n as u64)
    }

    /// Inverse of [`NttTable::exponent_at`]: the storage position of the
    /// evaluation at `ψ^{e}` (requires `e` odd, `e < 2N`).
    pub fn position_of_exponent(&self, e: u64) -> usize {
        debug_assert!(e % 2 == 1 && e < 2 * self.n as u64);
        bit_reverse(((e - 1) / 2) as usize, self.log_n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prime::generate_ntt_primes;

    fn table(bits: u32, n: usize) -> NttTable {
        NttTable::new(generate_ntt_primes(1, bits, n)[0], n).unwrap()
    }

    #[test]
    fn constructor_rejects_bad_inputs() {
        assert!(matches!(
            NttTable::new(97, 3),
            Err(NttError::InvalidDegree(3))
        ));
        assert!(matches!(
            NttTable::new(91, 8),
            Err(NttError::UnsupportedModulus(91))
        ));
        // 97 is prime but 97 ≢ 1 mod 64.
        assert!(matches!(
            NttTable::new(97, 32),
            Err(NttError::UnsupportedModulus(97))
        ));
    }

    #[test]
    fn roundtrip_identity_various_sizes() {
        for n in [2usize, 8, 64, 1024] {
            let t = table(35, n);
            let mut data: Vec<u64> = (0..n as u64)
                .map(|i| i.wrapping_mul(0x9e3779b97f4a7c15) % t.modulus().value())
                .collect();
            let orig = data.clone();
            t.forward(&mut data);
            t.inverse(&mut data);
            assert_eq!(data, orig, "n={n}");
        }
    }

    #[test]
    fn convolution_is_negacyclic() {
        // (x^{n-1}) * (x) = x^n = -1 mod x^n + 1.
        let n = 16;
        let t = table(30, n);
        let q = *t.modulus();
        let mut a = vec![0u64; n];
        a[n - 1] = 1;
        let mut b = vec![0u64; n];
        b[1] = 1;
        t.forward(&mut a);
        t.forward(&mut b);
        let mut c: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| q.mul(x, y)).collect();
        t.inverse(&mut c);
        let mut expect = vec![0u64; n];
        expect[0] = q.value() - 1; // -1
        assert_eq!(c, expect);
    }

    #[test]
    fn matches_schoolbook_negacyclic_product() {
        let n = 32;
        let t = table(28, n);
        let q = *t.modulus();
        let a: Vec<u64> = (0..n as u64).map(|i| (i * i + 3) % q.value()).collect();
        let b: Vec<u64> = (0..n as u64).map(|i| (7 * i + 1) % q.value()).collect();
        // Schoolbook with sign wrap.
        let mut expect = vec![0u64; n];
        for i in 0..n {
            for j in 0..n {
                let prod = q.mul(a[i], b[j]);
                let k = i + j;
                if k < n {
                    expect[k] = q.add(expect[k], prod);
                } else {
                    expect[k - n] = q.sub(expect[k - n], prod);
                }
            }
        }
        let mut fa = a.clone();
        let mut fb = b.clone();
        t.forward(&mut fa);
        t.forward(&mut fb);
        let mut c: Vec<u64> = fa.iter().zip(&fb).map(|(&x, &y)| q.mul(x, y)).collect();
        t.inverse(&mut c);
        assert_eq!(c, expect);
    }

    #[test]
    fn forward_is_linear() {
        let n = 64;
        let t = table(32, n);
        let q = *t.modulus();
        let a: Vec<u64> = (0..n as u64).map(|i| (i * 31 + 5) % q.value()).collect();
        let b: Vec<u64> = (0..n as u64).map(|i| (i * 17 + 9) % q.value()).collect();
        let sum: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| q.add(x, y)).collect();
        let mut fa = a.clone();
        let mut fb = b.clone();
        let mut fsum = sum.clone();
        t.forward(&mut fa);
        t.forward(&mut fb);
        t.forward(&mut fsum);
        let combined: Vec<u64> = fa.iter().zip(&fb).map(|(&x, &y)| q.add(x, y)).collect();
        assert_eq!(fsum, combined);
    }

    #[test]
    fn exponent_bookkeeping_consistent() {
        let n = 64;
        let t = table(30, n);
        let mut seen = vec![false; 2 * n];
        for pos in 0..n {
            let e = t.exponent_at(pos);
            assert_eq!(e % 2, 1);
            assert!(!seen[e as usize], "duplicate exponent");
            seen[e as usize] = true;
            assert_eq!(t.position_of_exponent(e), pos);
        }
    }

    #[test]
    fn evaluation_points_match_exponents() {
        // forward(p) at position pos must equal p(ψ^{exponent_at(pos)}).
        let n = 16;
        let t = table(25, n);
        let q = *t.modulus();
        let coeffs: Vec<u64> = (0..n as u64).map(|i| (i * 3 + 1) % q.value()).collect();
        let mut evals = coeffs.clone();
        t.forward(&mut evals);
        for pos in 0..n {
            let point = q.pow(t.psi(), t.exponent_at(pos));
            let mut horner = 0u64;
            for &c in coeffs.iter().rev() {
                horner = q.add(q.mul(horner, point), c);
            }
            assert_eq!(evals[pos], horner, "pos={pos}");
        }
    }

    #[test]
    fn butterfly_count_formula() {
        let t = table(30, 1024);
        assert_eq!(t.butterfly_count(), 512 * 10);
    }
}
