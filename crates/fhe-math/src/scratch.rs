//! Reusable scratch buffers for allocation-free hot paths.
//!
//! The MAD paper's central observation is that FHE kernels are bound by
//! data movement, not arithmetic; churning the allocator on every `ModUp`/
//! `ModDown`/key-switch both costs time and wrecks locality. A
//! [`ScratchPool`] is a small free-list of `Vec<u64>` buffers: kernels
//! `take` a buffer sized for their working set and `recycle` it when done,
//! so after a warm-up pass the steady state performs **zero heap
//! allocations per operation** (asserted by `ckks`'s scratch-stats test).
//!
//! The pool is internally synchronized (a `Mutex` around the free list) so
//! it can be shared behind `Arc<CkksContext>`; the lock is held only for
//! the push/pop, never across kernel work.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Counters describing pool behavior since construction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScratchStats {
    /// Total number of buffers handed out.
    pub leases: u64,
    /// Leases that had to allocate because no pooled buffer was large
    /// enough. A warmed-up hot path keeps this constant.
    pub misses: u64,
    /// Buffers currently sitting in the free list.
    pub free: usize,
}

/// A free-list of `u64` buffers shared by the polynomial kernels.
#[derive(Debug, Default)]
pub struct ScratchPool {
    free: Mutex<Vec<Vec<u64>>>,
    leases: AtomicU64,
    misses: AtomicU64,
}

impl ScratchPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a zeroed buffer of exactly `len` words, reusing a pooled
    /// allocation when one is large enough.
    pub fn take_vec(&self, len: usize) -> Vec<u64> {
        self.leases.fetch_add(1, Ordering::Relaxed);
        crate::telemetry::record_scratch_lease(8 * len as u64);
        let reused = {
            let mut free = self.free.lock().expect("scratch pool poisoned");
            free.iter()
                .position(|b| b.capacity() >= len)
                .map(|idx| free.swap_remove(idx))
        };
        match reused {
            Some(mut buf) => {
                buf.clear();
                buf.resize(len, 0);
                buf
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                vec![0u64; len]
            }
        }
    }

    /// Returns a buffer to the pool for reuse. The contents are discarded.
    pub fn recycle_vec(&self, buf: Vec<u64>) {
        if buf.capacity() == 0 {
            return;
        }
        self.free.lock().expect("scratch pool poisoned").push(buf);
    }

    /// Takes a zeroed buffer that hands itself back to the pool on drop.
    pub fn take(&self, len: usize) -> ScratchGuard<'_> {
        ScratchGuard {
            pool: self,
            buf: self.take_vec(len),
        }
    }

    /// Current counters.
    pub fn stats(&self) -> ScratchStats {
        ScratchStats {
            leases: self.leases.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            free: self.free.lock().expect("scratch pool poisoned").len(),
        }
    }
}

/// RAII lease of a pool buffer; derefs to `[u64]`.
#[derive(Debug)]
pub struct ScratchGuard<'a> {
    pool: &'a ScratchPool,
    buf: Vec<u64>,
}

impl std::ops::Deref for ScratchGuard<'_> {
    type Target = [u64];
    fn deref(&self) -> &[u64] {
        &self.buf
    }
}

impl std::ops::DerefMut for ScratchGuard<'_> {
    fn deref_mut(&mut self) -> &mut [u64] {
        &mut self.buf
    }
}

impl Drop for ScratchGuard<'_> {
    fn drop(&mut self) {
        self.pool.recycle_vec(std::mem::take(&mut self.buf));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuse_avoids_reallocation() {
        let pool = ScratchPool::new();
        let a = pool.take_vec(1024);
        let ptr = a.as_ptr();
        pool.recycle_vec(a);
        let b = pool.take_vec(512);
        assert_eq!(b.as_ptr(), ptr, "smaller request should reuse the buffer");
        pool.recycle_vec(b);
        let stats = pool.stats();
        assert_eq!(stats.leases, 2);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.free, 1);
    }

    #[test]
    fn buffers_come_back_zeroed() {
        let pool = ScratchPool::new();
        let mut a = pool.take_vec(16);
        a.iter_mut().for_each(|x| *x = u64::MAX);
        pool.recycle_vec(a);
        let b = pool.take_vec(16);
        assert!(b.iter().all(|&x| x == 0));
    }

    #[test]
    fn guard_returns_buffer_on_drop() {
        let pool = ScratchPool::new();
        {
            let mut g = pool.take(64);
            g[0] = 7;
            assert_eq!(g.len(), 64);
        }
        assert_eq!(pool.stats().free, 1);
        let g2 = pool.take(64);
        assert_eq!(pool.stats().misses, 1, "second take reuses the buffer");
        drop(g2);
    }

    #[test]
    fn oversized_requests_allocate_fresh() {
        let pool = ScratchPool::new();
        let a = pool.take_vec(8);
        pool.recycle_vec(a);
        let b = pool.take_vec(4096);
        assert_eq!(pool.stats().misses, 2);
        pool.recycle_vec(b);
    }
}
