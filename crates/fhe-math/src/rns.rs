//! Residue-number-system bases and the fast basis extension of Eq. (1).
//!
//! An [`RnsBasis`] is the set `B = {q_1, …, q_ℓ}` of word-sized prime limbs
//! whose product is the wide modulus `Q`. The [`BasisExtender`] implements
//! `NewLimb` (Eq. 1 of the MAD paper): given the residues of `x` in `B`, it
//! produces `x mod p` for new primes `p` — the *slot-wise* kernel that
//! interacts across limbs of a fixed slot (Table 3).
//!
//! The extension is the standard "fast base conversion" of the full-RNS CKKS
//! literature: it computes `Σ_i [x·Q̃_i]_{q_i} · Q_i^* mod p`, which equals
//! `x + e·Q mod p` for a small integer excess `e ∈ [0, ℓ)`. CKKS absorbs
//! this excess into the noise; the exact-CRT tests in this module quantify
//! it.

use crate::backend::{self, BasisExtView, KernelBackend, ShoupPair};
use crate::bigint::UBig;
use crate::modular::Modulus;
use crate::ntt::NttTable;
use std::fmt;
use std::sync::Arc;

/// An ordered RNS basis `{q_1, …, q_ℓ}` of distinct primes with NTT tables.
#[derive(Clone)]
pub struct RnsBasis {
    moduli: Vec<Modulus>,
    ntt_tables: Vec<Arc<NttTable>>,
    degree: usize,
    backend: Arc<dyn KernelBackend>,
}

impl fmt::Debug for RnsBasis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RnsBasis")
            .field("limbs", &self.moduli.len())
            .field("degree", &self.degree)
            .finish()
    }
}

/// Error constructing an [`RnsBasis`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RnsError {
    /// A limb prime was rejected by the NTT table constructor.
    BadLimb(u64),
    /// The same prime appears twice.
    DuplicateLimb(u64),
    /// The basis would be empty.
    Empty,
}

impl fmt::Display for RnsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RnsError::BadLimb(q) => write!(f, "limb {q} is not an NTT-friendly prime"),
            RnsError::DuplicateLimb(q) => write!(f, "limb {q} appears more than once"),
            RnsError::Empty => write!(f, "RNS basis must contain at least one limb"),
        }
    }
}

impl std::error::Error for RnsError {}

impl RnsBasis {
    /// Builds a basis over `Z[x]/(x^degree + 1)` from distinct NTT-friendly
    /// primes.
    ///
    /// # Errors
    ///
    /// Returns [`RnsError`] if `primes` is empty, contains duplicates, or
    /// contains a value that is not an NTT-friendly prime for `degree`.
    pub fn new(primes: &[u64], degree: usize) -> Result<Self, RnsError> {
        Self::with_backend(primes, degree, backend::default_backend())
    }

    /// Builds a basis whose limbs dispatch their kernels (NTT butterflies,
    /// pointwise ops, basis extension) to an explicit backend;
    /// [`RnsBasis::new`] uses the process-default backend. Sub-bases formed
    /// by [`RnsBasis::prefix`]/[`RnsBasis::select`]/[`RnsBasis::concat`]
    /// inherit the backend.
    ///
    /// # Errors
    ///
    /// Returns [`RnsError`] if `primes` is empty, contains duplicates, or
    /// contains a value that is not an NTT-friendly prime for `degree`.
    pub fn with_backend(
        primes: &[u64],
        degree: usize,
        backend: Arc<dyn KernelBackend>,
    ) -> Result<Self, RnsError> {
        if primes.is_empty() {
            return Err(RnsError::Empty);
        }
        let mut moduli = Vec::with_capacity(primes.len());
        let mut ntt_tables = Vec::with_capacity(primes.len());
        for (i, &q) in primes.iter().enumerate() {
            if primes[..i].contains(&q) {
                return Err(RnsError::DuplicateLimb(q));
            }
            let table = NttTable::with_backend(q, degree, backend.clone())
                .map_err(|_| RnsError::BadLimb(q))?;
            moduli.push(*table.modulus());
            ntt_tables.push(Arc::new(table));
        }
        Ok(Self {
            moduli,
            ntt_tables,
            degree,
            backend,
        })
    }

    /// The kernel backend this basis (and every polynomial over it)
    /// dispatches to.
    #[inline]
    pub fn backend(&self) -> &Arc<dyn KernelBackend> {
        &self.backend
    }

    /// Number of limbs `ℓ`.
    #[inline]
    pub fn len(&self) -> usize {
        self.moduli.len()
    }

    /// True if the basis has no limbs (never true for a constructed basis).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.moduli.is_empty()
    }

    /// Ring degree `N`.
    #[inline]
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// The limb moduli in order.
    #[inline]
    pub fn moduli(&self) -> &[Modulus] {
        &self.moduli
    }

    /// The `i`-th limb modulus.
    #[inline]
    pub fn modulus(&self, i: usize) -> &Modulus {
        &self.moduli[i]
    }

    /// The NTT table of the `i`-th limb.
    #[inline]
    pub fn ntt_table(&self, i: usize) -> &Arc<NttTable> {
        &self.ntt_tables[i]
    }

    /// The product `Q = ∏ q_i` as a big integer.
    pub fn product(&self) -> UBig {
        UBig::product(&self.moduli.iter().map(|m| m.value()).collect::<Vec<_>>())
    }

    /// Total bit size `log2 Q` (sum of limb bit sizes, approximate).
    pub fn log2_product(&self) -> f64 {
        self.moduli.iter().map(|m| (m.value() as f64).log2()).sum()
    }

    /// A sub-basis of the first `count` limbs (sharing NTT tables).
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero or exceeds the basis length.
    pub fn prefix(&self, count: usize) -> RnsBasis {
        assert!(count >= 1 && count <= self.len(), "invalid prefix length");
        RnsBasis {
            moduli: self.moduli[..count].to_vec(),
            ntt_tables: self.ntt_tables[..count].to_vec(),
            degree: self.degree,
            backend: self.backend.clone(),
        }
    }

    /// A sub-basis formed by the given limb indices (sharing NTT tables).
    ///
    /// Used by hybrid key switching to carve digit bases and their
    /// complements out of the ciphertext basis.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty, contains duplicates, or indexes out of
    /// range.
    pub fn select(&self, indices: &[usize]) -> RnsBasis {
        assert!(!indices.is_empty(), "selection must be non-empty");
        for (i, &idx) in indices.iter().enumerate() {
            assert!(idx < self.len(), "index {idx} out of range");
            assert!(!indices[..i].contains(&idx), "duplicate index {idx}");
        }
        RnsBasis {
            moduli: indices.iter().map(|&i| self.moduli[i]).collect(),
            ntt_tables: indices
                .iter()
                .map(|&i| self.ntt_tables[i].clone())
                .collect(),
            degree: self.degree,
            backend: self.backend.clone(),
        }
    }

    /// Concatenation of two bases over the same degree.
    ///
    /// # Panics
    ///
    /// Panics if the degrees differ or a limb appears in both.
    pub fn concat(&self, other: &RnsBasis) -> RnsBasis {
        assert_eq!(self.degree, other.degree, "degree mismatch");
        for m in other.moduli() {
            assert!(
                !self.moduli.iter().any(|x| x.value() == m.value()),
                "limb {} duplicated in concat",
                m.value()
            );
        }
        RnsBasis {
            moduli: [self.moduli.clone(), other.moduli.clone()].concat(),
            ntt_tables: [self.ntt_tables.clone(), other.ntt_tables.clone()].concat(),
            degree: self.degree,
            backend: self.backend.clone(),
        }
    }

    /// CRT-reconstructs the integer in `[0, Q)` with residues `residues`
    /// (one per limb). Exact; used by decoding and tests.
    ///
    /// # Panics
    ///
    /// Panics if `residues.len() != self.len()`.
    pub fn crt_reconstruct(&self, residues: &[u64]) -> UBig {
        assert_eq!(residues.len(), self.len(), "residue count mismatch");
        // Garner-style mixed-radix reconstruction.
        // x = v_1 + v_2 q_1 + v_3 q_1 q_2 + …
        let l = self.len();
        let mut v = vec![0u64; l];
        for i in 0..l {
            let qi = &self.moduli[i];
            let mut t = qi.reduce(residues[i]);
            // subtract contribution of earlier digits, divide by earlier moduli
            for j in 0..i {
                let qj_mod_qi = qi.reduce(self.moduli[j].value());
                t = qi.sub(t, qi.reduce(v[j]));
                let inv = qi.inv(qj_mod_qi).expect("distinct primes are coprime");
                t = qi.mul(t, inv);
            }
            v[i] = t;
        }
        let mut acc = UBig::zero();
        let mut radix = UBig::one();
        for i in 0..l {
            let mut term = radix.clone();
            term.mul_small(v[i]);
            acc.add_assign(&term);
            radix.mul_small(self.moduli[i].value());
        }
        acc
    }
}

/// Precomputed fast basis extension from a source basis `B` to a target
/// basis `B'` (Eq. 1 of the paper, `NewLimb`).
///
/// The raw sum `Σ_i [x·Q̃_i]_{q_i} · Q_i^*` equals `x + e·Q` for an excess
/// `e ∈ [0, ℓ)`. We remove `e` with the standard floating-point estimate
/// `e = ⌊Σ_i y_i / q_i⌉` (exact for word-sized primes and `ℓ ≤ 64`), so
/// [`BasisExtender::extend_coeff`] returns the *exact* representative
/// `[x]_p` of the source value `x ∈ [0, Q)`.
#[derive(Clone)]
pub struct BasisExtender {
    /// `Q̃_i = (Q/q_i)^{-1} mod q_i` with Shoup companions, one per source
    /// limb.
    q_tilde: Vec<ShoupPair>,
    /// `1 / q_i` as `f64`, for the excess estimate.
    q_inv_f64: Vec<f64>,
    /// `Q_i^* = Q/q_i mod p_j`, indexed `[target][source]`.
    q_star: Vec<Vec<u64>>,
    /// `Q mod p_j`, used to subtract the excess `e·Q`.
    q_mod_target: Vec<u64>,
    source_moduli: Vec<Modulus>,
    target_moduli: Vec<Modulus>,
    /// Backend the fused flat conversion dispatches to (inherited from the
    /// source basis).
    backend: Arc<dyn KernelBackend>,
}

impl fmt::Debug for BasisExtender {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BasisExtender")
            .field("source_limbs", &self.source_moduli.len())
            .field("target_limbs", &self.target_moduli.len())
            .finish()
    }
}

impl BasisExtender {
    /// Precomputes conversion constants from `source` to `target`.
    ///
    /// # Panics
    ///
    /// Panics if the bases share a limb (extension to an overlapping basis
    /// is a logic error in the caller).
    pub fn new(source: &RnsBasis, target: &RnsBasis) -> Self {
        for m in target.moduli() {
            assert!(
                !source.moduli().iter().any(|x| x.value() == m.value()),
                "target limb {} overlaps source basis",
                m.value()
            );
        }
        let l = source.len();
        let mut q_tilde = Vec::with_capacity(l);
        for i in 0..l {
            let qi = source.modulus(i);
            // Q_i^* mod q_i = ∏_{j≠i} q_j mod q_i
            let mut prod = 1u64;
            for j in 0..l {
                if j != i {
                    prod = qi.mul(prod, qi.reduce(source.modulus(j).value()));
                }
            }
            let inv = qi.inv(prod).expect("limb primes are coprime");
            q_tilde.push(ShoupPair::new(qi, inv));
        }
        let mut q_star = Vec::with_capacity(target.len());
        let mut q_mod_target = Vec::with_capacity(target.len());
        for pj in target.moduli() {
            let mut row = vec![0u64; l];
            for i in 0..l {
                let mut prod = 1u64;
                for j in 0..l {
                    if j != i {
                        prod = pj.mul(prod, pj.reduce(source.modulus(j).value()));
                    }
                }
                row[i] = prod;
            }
            let mut qm = 1u64;
            for j in 0..l {
                qm = pj.mul(qm, pj.reduce(source.modulus(j).value()));
            }
            q_star.push(row);
            q_mod_target.push(qm);
        }
        let q_inv_f64 = source
            .moduli()
            .iter()
            .map(|m| 1.0 / m.value() as f64)
            .collect();
        Self {
            q_tilde,
            q_inv_f64,
            q_star,
            q_mod_target,
            source_moduli: source.moduli().to_vec(),
            target_moduli: target.moduli().to_vec(),
            backend: source.backend().clone(),
        }
    }

    /// Borrowed view of the precomputed constants, in the shape
    /// [`crate::backend::KernelBackend::basis_ext_block`] consumes.
    #[inline]
    pub fn view(&self) -> BasisExtView<'_> {
        BasisExtView {
            q_tilde: &self.q_tilde,
            q_inv_f64: &self.q_inv_f64,
            q_star: &self.q_star,
            q_mod_target: &self.q_mod_target,
            source_moduli: &self.source_moduli,
            target_moduli: &self.target_moduli,
        }
    }

    /// Number of source limbs.
    #[inline]
    pub fn source_len(&self) -> usize {
        self.source_moduli.len()
    }

    /// Number of target limbs.
    #[inline]
    pub fn target_len(&self) -> usize {
        self.target_moduli.len()
    }

    /// `Q mod p_j` for target limb `j`.
    #[inline]
    pub fn source_product_mod_target(&self, j: usize) -> u64 {
        self.q_mod_target[j]
    }

    /// Applies `NewLimb` to one coefficient: given `residues[i] = [x]_{q_i}`
    /// for the representative `x ∈ [0, Q)`, writes `[x]_{p_j}` for each
    /// target limb `j` (exact; see the type-level docs).
    ///
    /// # Panics
    ///
    /// Panics if `residues.len() != self.source_len()`.
    pub fn extend_coeff(&self, residues: &[u64], out: &mut [u64]) {
        assert_eq!(residues.len(), self.source_len());
        assert_eq!(out.len(), self.target_len());
        // y_i = [x · Q̃_i]_{q_i}
        let l = self.source_len();
        let mut y = [0u64; 64];
        assert!(l <= 64, "basis too large for stack buffer");
        let mut excess_est = 0.0f64;
        for i in 0..l {
            let c = self.q_tilde[i];
            y[i] = self.source_moduli[i].mul_shoup(residues[i], c.value, c.shoup);
            excess_est += y[i] as f64 * self.q_inv_f64[i];
        }
        // Σ y_i Q_i^* = x + e·Q, and Σ y_i/q_i = e + x/Q with x/Q ∈ [0,1),
        // so flooring the float estimate recovers e exactly (up to the
        // negligible chance of x within Q·2^{-45} of a multiple of Q).
        let e = excess_est as u64;
        for (j, slot) in out.iter_mut().enumerate() {
            let pj = &self.target_moduli[j];
            let mut acc = 0u128;
            for i in 0..l {
                acc += y[i] as u128 * self.q_star[j][i] as u128;
                // Accumulate lazily; reduce when nearing overflow.
                if i % 4 == 3 {
                    acc = pj.reduce_u128(acc) as u128;
                }
            }
            let raw = pj.reduce_u128(acc);
            let correction = pj.mul(pj.reduce(e), self.q_mod_target[j]);
            *slot = pj.sub(raw, correction);
        }
    }

    /// Applies `NewLimb` across entire flat limb-major buffers: `src` holds
    /// the `source_len()` limbs of length `n` back to back, and the
    /// `target_len()` result limbs are written to `dst` in the same layout.
    ///
    /// This is the slot-wise access pattern of the paper: the inner loop
    /// walks all source limbs of one slot. With the `parallel` feature the
    /// slot range is split across threads (slots are independent, so the
    /// split is bit-exact); all per-slot state lives on the stack, so the
    /// call never allocates.
    ///
    /// # Panics
    ///
    /// Panics on any length mismatch.
    pub fn extend_flat(&self, src: &[u64], dst: &mut [u64], n: usize) {
        let l = self.source_len();
        let t = self.target_len();
        assert_eq!(src.len(), l * n, "source buffer length mismatch");
        assert_eq!(dst.len(), t * n, "target buffer length mismatch");
        assert!(t <= 64, "target basis too large for stack buffer");
        assert!(l <= 64, "source basis too large for stack buffer");
        // Telemetry is recorded here — at the dispatch site, in logical
        // units — so every backend reports identical counts.
        crate::telemetry::record_basis_ext(l as u64, t as u64, n as u64);
        let ext = self.view();
        crate::parallel::for_each_slot_block(dst, n, |range, cols| {
            self.backend.basis_ext_block(&ext, src, n, range, cols);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prime::{generate_ntt_primes, generate_ntt_primes_excluding};

    fn bases(src_limbs: usize, dst_limbs: usize, bits: u32, n: usize) -> (RnsBasis, RnsBasis) {
        let src_primes = generate_ntt_primes(src_limbs, bits, n);
        let dst_primes = generate_ntt_primes_excluding(dst_limbs, bits + 1, n, &src_primes);
        (
            RnsBasis::new(&src_primes, n).unwrap(),
            RnsBasis::new(&dst_primes, n).unwrap(),
        )
    }

    #[test]
    fn constructor_validates() {
        assert!(matches!(RnsBasis::new(&[], 8), Err(RnsError::Empty)));
        let q = generate_ntt_primes(1, 20, 8)[0];
        assert!(matches!(
            RnsBasis::new(&[q, q], 8),
            Err(RnsError::DuplicateLimb(_))
        ));
        assert!(matches!(
            RnsBasis::new(&[91], 8),
            Err(RnsError::BadLimb(91))
        ));
    }

    #[test]
    fn crt_reconstruct_roundtrips_small_values() {
        let primes = generate_ntt_primes(3, 20, 16);
        let basis = RnsBasis::new(&primes, 16).unwrap();
        for value in [0u64, 1, 42, 123456789, u32::MAX as u64] {
            let residues: Vec<u64> = primes.iter().map(|&q| value % q).collect();
            assert_eq!(basis.crt_reconstruct(&residues), UBig::from(value));
        }
    }

    #[test]
    fn crt_reconstruct_large_value() {
        let primes = generate_ntt_primes(4, 30, 16);
        let basis = RnsBasis::new(&primes, 16).unwrap();
        // x = Q - 1 has residues q_i - 1.
        let residues: Vec<u64> = primes.iter().map(|&q| q - 1).collect();
        let mut expect = basis.product();
        expect.sub_assign(&UBig::one());
        assert_eq!(basis.crt_reconstruct(&residues), expect);
    }

    #[test]
    fn extension_exact_for_small_values() {
        let (src, dst) = bases(3, 2, 25, 16);
        let ext = BasisExtender::new(&src, &dst);
        for value in [0u64, 1, 7, 1 << 20, (1 << 24) - 3] {
            let residues: Vec<u64> = src.moduli().iter().map(|m| value % m.value()).collect();
            let mut out = vec![0u64; 2];
            ext.extend_coeff(&residues, &mut out);
            for (j, m) in dst.moduli().iter().enumerate() {
                assert_eq!(out[j], value % m.value(), "value={value} target={j}");
            }
        }
    }

    #[test]
    fn extension_exact_for_arbitrary_residues() {
        let (src, dst) = bases(4, 2, 22, 16);
        let ext = BasisExtender::new(&src, &dst);
        // Pseudo-random residue vectors spanning the full range of [0, Q):
        // reconstruct x exactly and check the converted value equals
        // x mod p with no excess (the float correction removes e·Q).
        for seed in 0..200u64 {
            let residues: Vec<u64> = src
                .moduli()
                .iter()
                .enumerate()
                .map(|(i, m)| {
                    (seed.wrapping_mul(0x9e3779b97f4a7c15) ^ (i as u64 * 0x85ebca6b)) % m.value()
                })
                .collect();
            let x = src.crt_reconstruct(&residues);
            let mut out = vec![0u64; dst.len()];
            ext.extend_coeff(&residues, &mut out);
            for (j, m) in dst.moduli().iter().enumerate() {
                assert_eq!(out[j], x.rem_u64(m.value()), "seed={seed} target={j}");
            }
        }
    }

    #[test]
    fn extend_flat_matches_per_coeff() {
        let (src, dst) = bases(3, 3, 24, 32);
        let ext = BasisExtender::new(&src, &dst);
        let n = 32;
        let mut flat = vec![0u64; src.len() * n];
        for i in 0..src.len() {
            let m = src.modulus(i);
            for k in 0..n as u64 {
                flat[i * n + k as usize] = (k * 31 + i as u64 * 7 + 1) % m.value();
            }
        }
        let mut dst_flat = vec![0u64; dst.len() * n];
        ext.extend_flat(&flat, &mut dst_flat, n);
        for k in 0..n {
            let residues: Vec<u64> = (0..src.len()).map(|i| flat[i * n + k]).collect();
            let mut out = vec![0u64; dst.len()];
            ext.extend_coeff(&residues, &mut out);
            for j in 0..dst.len() {
                assert_eq!(dst_flat[j * n + k], out[j]);
            }
        }
    }

    #[test]
    fn prefix_and_concat() {
        let (src, dst) = bases(3, 2, 24, 16);
        let p = src.prefix(2);
        assert_eq!(p.len(), 2);
        assert_eq!(p.modulus(0).value(), src.modulus(0).value());
        let joined = src.concat(&dst);
        assert_eq!(joined.len(), 5);
        assert_eq!(joined.modulus(4).value(), dst.modulus(1).value());
    }

    #[test]
    #[should_panic(expected = "duplicated in concat")]
    fn concat_rejects_overlap() {
        let (src, _) = bases(3, 2, 24, 16);
        let _ = src.concat(&src.prefix(1));
    }
}
