//! Pluggable kernel backends for the hot ring kernels.
//!
//! The MAD paper's thesis is that FHE throughput is decided by how the hot
//! kernels — negacyclic NTT/iNTT butterflies, Barrett/Shoup modular
//! multiplication, and the `NewLimb` basis-extension inner products — move
//! data. This module makes those kernels *pluggable*: every call site that
//! used to open-code a modmul loop now dispatches through the
//! [`KernelBackend`] trait, selected per [`NttTable`]/[`crate::rns::RnsBasis`] (and, one
//! layer up, per `ckks::CkksContext`) at construction time.
//!
//! Two implementations ship today:
//!
//! - [`ScalarBackend`] — the original scalar loops, moved verbatim behind
//!   the trait. Every value is kept fully reduced in `[0, q)` at every step.
//! - [`UnrolledBackend`] — processes butterflies in fixed-width blocks with
//!   **lazy (deferred) reduction**: operands are kept in the half-reduced
//!   range `[0, 2q)` across butterfly stages (transiently `[0, 4q)` inside a
//!   butterfly, which is why [`crate::modular::MAX_MODULUS_BITS`] is 62),
//!   and the single conditional subtraction down to `[0, q)` happens once at
//!   transform exit. The inner loops are branch-light straight-line blocks
//!   that LLVM can unroll and auto-vectorize — no nightly `std::simd`
//!   dependency.
//!
//! Both backends compute the exact same mathematical results and emit fully
//! reduced canonical residues, so their outputs are **bit-identical** — the
//! `backend_identity` test suites assert this end to end (NTT round-trips,
//! key switching, rescaling, hoisted rotation, a full HELR step), the same
//! way the `parallel_identity` suites gate the limb-parallel kernels.
//!
//! # Selection
//!
//! [`resolve`] picks a backend with precedence: explicit caller choice
//! (e.g. `CkksContext::with_backend`) > the `MAD_KERNEL_BACKEND` environment
//! variable (`scalar` or `unrolled`) > the built-in default (the best
//! available implementation, currently [`UnrolledBackend`]). The env
//! override lets CI run the entire tier-1 test suite once per backend
//! without touching any call site.
//!
//! # Telemetry contract
//!
//! Backends perform **no telemetry recording**. Butterfly, multiplication,
//! and basis-extension counters are recorded by the dispatching layer
//! ([`NttTable::forward`], `BasisExtender::extend_flat`, the `RnsPoly`
//! ops) in units of *logical* operations, so measured counts are identical
//! across backends by construction — a blocked backend must not inflate
//! counters with per-block increments. The `backend_counters_identical`
//! regression test pins this.
//!
//! # Adding a backend
//!
//! Implement [`KernelBackend`] (the contract for each method is documented
//! on the trait), add a [`BackendKind`] variant wired into
//! [`BackendKind::instance`] and [`BackendKind::from_name`], and the whole
//! stack — `RnsPoly`, key switching, the serving runtime — picks it up
//! through construction-time selection. A GPU or `std::simd` backend is a
//! single new impl; correctness is gated by running the existing
//! `backend_identity` suites under `MAD_KERNEL_BACKEND=<name>`.

use crate::modular::Modulus;
use crate::ntt::NttTable;
use std::fmt;
use std::ops::Range;
use std::sync::{Arc, OnceLock};

/// A constant multiplicand paired with its Shoup companion
/// `⌊value·2^64/q⌋`.
///
/// This is the **single precomputation path** for Shoup constants: the NTT
/// twiddle tables (`ntt.rs`), the basis-extension `Q̃_i` factors (`rns.rs`),
/// and the scalar/rescale multipliers (`poly.rs`) all store `ShoupPair`s
/// built here instead of each computing and carrying parallel
/// `(value, shoup)` vectors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShoupPair {
    /// The reduced constant `value < q`.
    pub value: u64,
    /// `⌊value·2^64/q⌋`, the Shoup companion for single-word modmul.
    pub shoup: u64,
}

impl ShoupPair {
    /// Precomputes the Shoup companion of `value` (must be reduced mod
    /// `m`).
    #[inline]
    pub fn new(m: &Modulus, value: u64) -> Self {
        Self {
            value,
            shoup: m.shoup(value),
        }
    }

    /// Precomputes a table of Shoup pairs for a slice of reduced constants.
    pub fn table(m: &Modulus, values: &[u64]) -> Vec<ShoupPair> {
        values.iter().map(|&v| Self::new(m, v)).collect()
    }
}

/// Borrowed view of a `BasisExtender`'s precomputed constants, handed to
/// [`KernelBackend::basis_ext_block`] so backends can fuse the `NewLimb`
/// inner loops without `rns.rs` exposing its fields.
pub struct BasisExtView<'a> {
    /// `Q̃_i = (Q/q_i)^{-1} mod q_i` with Shoup companions, per source limb.
    pub q_tilde: &'a [ShoupPair],
    /// `1/q_i` as `f64`, for the conversion-excess estimate.
    pub q_inv_f64: &'a [f64],
    /// `Q_i^* = Q/q_i mod p_j`, indexed `[target][source]`.
    pub q_star: &'a [Vec<u64>],
    /// `Q mod p_j` per target limb, used to subtract the excess `e·Q`.
    pub q_mod_target: &'a [u64],
    /// The source limb moduli `q_i`.
    pub source_moduli: &'a [Modulus],
    /// The target limb moduli `p_j`.
    pub target_moduli: &'a [Modulus],
}

/// The pluggable hot-kernel implementation.
///
/// Every method must produce **fully reduced canonical residues**
/// (`< q`) in its outputs, regardless of internal representation — this is
/// what makes backends interchangeable bit-for-bit. Inputs are always
/// canonical. Backends must not record telemetry (see the module docs).
pub trait KernelBackend: Send + Sync + fmt::Debug {
    /// Stable lowercase identifier (`"scalar"`, `"unrolled"`), used for
    /// env selection, metrics labels, and bench IDs.
    fn name(&self) -> &'static str;

    /// In-place forward negacyclic NTT over one limb (Cooley–Tukey
    /// decimation-in-time, bit-reversed output), using `table`'s
    /// precomputed twiddles. `data.len() == table.size()`.
    fn ntt_forward(&self, table: &NttTable, data: &mut [u64]);

    /// In-place inverse negacyclic NTT (Gentleman–Sande, bit-reversed
    /// input, natural output), including the final `N^{-1}` scaling.
    fn ntt_inverse(&self, table: &NttTable, data: &mut [u64]);

    /// `dst[k] = dst[k] + src[k] mod q`.
    fn pointwise_add(&self, m: &Modulus, dst: &mut [u64], src: &[u64]);

    /// `dst[k] = dst[k] - src[k] mod q`.
    fn pointwise_sub(&self, m: &Modulus, dst: &mut [u64], src: &[u64]);

    /// `dst[k] = -dst[k] mod q`.
    fn pointwise_neg(&self, m: &Modulus, dst: &mut [u64]);

    /// `dst[k] = dst[k] · src[k] mod q` (Barrett).
    fn pointwise_mul(&self, m: &Modulus, dst: &mut [u64], src: &[u64]);

    /// `out[k] = a[k] · b[k] mod q`, leaving both inputs untouched.
    fn pointwise_mul_into(&self, m: &Modulus, a: &[u64], b: &[u64], out: &mut [u64]);

    /// `dst[k] = dst[k] · c mod q` with a precomputed Shoup constant.
    fn scale_shoup(&self, m: &Modulus, dst: &mut [u64], c: ShoupPair);

    /// The fused rescale/`ModDown` combine:
    /// `dst[k] = (minuend[k] - dst[k]) · c mod q`.
    fn sub_scale_shoup(&self, m: &Modulus, minuend: &[u64], dst: &mut [u64], c: ShoupPair);

    /// `dst[k] = dst[k] + c mod q` for a reduced constant `c` (the
    /// `ModDown` centering trick).
    fn add_scalar(&self, m: &Modulus, dst: &mut [u64], c: u64);

    /// `dst[k] = dst[k] - c mod q` for a reduced constant `c`.
    fn sub_scalar(&self, m: &Modulus, dst: &mut [u64], c: u64);

    /// The key-switch inner-product step for one limb and digit:
    /// `u[k] += d[k]·a[k]` and `v[k] += d[k]·b[k]`, all mod q.
    fn fma_pair(&self, m: &Modulus, d: &[u64], a: &[u64], b: &[u64], u: &mut [u64], v: &mut [u64]);

    /// The fused `NewLimb` (Eq. 1) inner loops over a block of slots.
    ///
    /// `src` is the whole flat limb-major source buffer (`source_moduli`
    /// limbs of length `n`); `range` is the slot block to convert and
    /// `cols[j]` is the matching window (`range.len()` long) into target
    /// limb `j`. Implementations must reproduce the scalar conversion
    /// exactly, **including the excess estimate**: `Σ_i y_i/q_i` must be
    /// accumulated in ascending source-limb order so the float rounding —
    /// and therefore the recovered excess `e` — is identical across
    /// backends.
    fn basis_ext_block(
        &self,
        ext: &BasisExtView<'_>,
        src: &[u64],
        n: usize,
        range: Range<usize>,
        cols: &mut [&mut [u64]],
    );
}

/// Named backend selector (the construction-time configuration surface).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// The original fully-reduced scalar loops.
    Scalar,
    /// Fixed-width blocked butterflies with lazy reduction.
    Unrolled,
}

impl BackendKind {
    /// Parses a backend name as used by `MAD_KERNEL_BACKEND`.
    pub fn from_name(name: &str) -> Option<Self> {
        match name.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(Self::Scalar),
            "unrolled" | "vectorized" => Some(Self::Unrolled),
            "" | "auto" | "default" | "best" => Some(best_available()),
            _ => None,
        }
    }

    /// The shared instance of this backend.
    pub fn instance(self) -> Arc<dyn KernelBackend> {
        static SCALAR: OnceLock<Arc<dyn KernelBackend>> = OnceLock::new();
        static UNROLLED: OnceLock<Arc<dyn KernelBackend>> = OnceLock::new();
        match self {
            Self::Scalar => SCALAR.get_or_init(|| Arc::new(ScalarBackend)).clone(),
            Self::Unrolled => UNROLLED.get_or_init(|| Arc::new(UnrolledBackend)).clone(),
        }
    }

    /// The backend's stable name.
    pub fn name(self) -> &'static str {
        match self {
            Self::Scalar => "scalar",
            Self::Unrolled => "unrolled",
        }
    }
}

/// The best implementation available on this build (the default when
/// neither the caller nor the environment picks one).
pub const fn best_available() -> BackendKind {
    BackendKind::Unrolled
}

/// The backend selected by `MAD_KERNEL_BACKEND`, if the variable is set to
/// a recognized name. Parsed once per process.
pub fn env_override() -> Option<BackendKind> {
    static ENV: OnceLock<Option<BackendKind>> = OnceLock::new();
    *ENV.get_or_init(|| {
        let raw = std::env::var("MAD_KERNEL_BACKEND").ok()?;
        match BackendKind::from_name(&raw) {
            Some(k) => Some(k),
            None => {
                eprintln!(
                    "warning: unknown MAD_KERNEL_BACKEND={raw:?} (expected \
                     \"scalar\" or \"unrolled\"); using the default backend"
                );
                None
            }
        }
    })
}

/// Resolves the backend to use: explicit `prefer` > `MAD_KERNEL_BACKEND` >
/// [`best_available`].
///
/// An explicit preference wins over the environment so that identity tests
/// can pin *both* backends inside one process even when CI exports the env
/// override for the rest of the suite.
pub fn resolve(prefer: Option<BackendKind>) -> Arc<dyn KernelBackend> {
    prefer
        .or_else(env_override)
        .unwrap_or(best_available())
        .instance()
}

/// The process-default backend ([`resolve`] with no explicit preference).
pub fn default_backend() -> Arc<dyn KernelBackend> {
    resolve(None)
}

// ---------------------------------------------------------------------------
// Scalar backend: the original fully-reduced loops.
// ---------------------------------------------------------------------------

/// The original scalar kernels: every intermediate value is fully reduced.
///
/// This is the reference implementation the lazy-reduction backends are
/// gated against; it favors obviousness over speed.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScalarBackend;

impl KernelBackend for ScalarBackend {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn ntt_forward(&self, table: &NttTable, data: &mut [u64]) {
        let n = table.size();
        let q = table.modulus();
        let roots = table.forward_roots();
        let mut t = n;
        let mut m = 1usize;
        while m < n {
            t >>= 1;
            for i in 0..m {
                let w = roots[m + i];
                let base = 2 * i * t;
                for j in base..base + t {
                    let u = data[j];
                    let v = q.mul_shoup(data[j + t], w.value, w.shoup);
                    data[j] = q.add(u, v);
                    data[j + t] = q.sub(u, v);
                }
            }
            m <<= 1;
        }
    }

    fn ntt_inverse(&self, table: &NttTable, data: &mut [u64]) {
        let n = table.size();
        let q = table.modulus();
        let roots = table.inverse_roots();
        let mut t = 1usize;
        let mut m = n;
        while m > 1 {
            let h = m >> 1;
            let mut base = 0usize;
            for i in 0..h {
                let w = roots[h + i];
                for j in base..base + t {
                    let u = data[j];
                    let v = data[j + t];
                    data[j] = q.add(u, v);
                    data[j + t] = q.mul_shoup(q.sub(u, v), w.value, w.shoup);
                }
                base += 2 * t;
            }
            t <<= 1;
            m = h;
        }
        let n_inv = table.n_inv();
        for x in data.iter_mut() {
            *x = q.mul_shoup(*x, n_inv.value, n_inv.shoup);
        }
    }

    fn pointwise_add(&self, m: &Modulus, dst: &mut [u64], src: &[u64]) {
        for (d, &s) in dst.iter_mut().zip(src) {
            *d = m.add(*d, s);
        }
    }

    fn pointwise_sub(&self, m: &Modulus, dst: &mut [u64], src: &[u64]) {
        for (d, &s) in dst.iter_mut().zip(src) {
            *d = m.sub(*d, s);
        }
    }

    fn pointwise_neg(&self, m: &Modulus, dst: &mut [u64]) {
        for d in dst.iter_mut() {
            *d = m.neg(*d);
        }
    }

    fn pointwise_mul(&self, m: &Modulus, dst: &mut [u64], src: &[u64]) {
        for (d, &s) in dst.iter_mut().zip(src) {
            *d = m.mul(*d, s);
        }
    }

    fn pointwise_mul_into(&self, m: &Modulus, a: &[u64], b: &[u64], out: &mut [u64]) {
        for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
            *o = m.mul(x, y);
        }
    }

    fn scale_shoup(&self, m: &Modulus, dst: &mut [u64], c: ShoupPair) {
        for d in dst.iter_mut() {
            *d = m.mul_shoup(*d, c.value, c.shoup);
        }
    }

    fn sub_scale_shoup(&self, m: &Modulus, minuend: &[u64], dst: &mut [u64], c: ShoupPair) {
        for (d, &s) in dst.iter_mut().zip(minuend) {
            *d = m.mul_shoup(m.sub(s, *d), c.value, c.shoup);
        }
    }

    fn add_scalar(&self, m: &Modulus, dst: &mut [u64], c: u64) {
        for d in dst.iter_mut() {
            *d = m.add(*d, c);
        }
    }

    fn sub_scalar(&self, m: &Modulus, dst: &mut [u64], c: u64) {
        for d in dst.iter_mut() {
            *d = m.sub(*d, c);
        }
    }

    fn fma_pair(&self, m: &Modulus, d: &[u64], a: &[u64], b: &[u64], u: &mut [u64], v: &mut [u64]) {
        for t in 0..d.len() {
            u[t] = m.mul_add(d[t], a[t], u[t]);
        }
        for t in 0..d.len() {
            v[t] = m.mul_add(d[t], b[t], v[t]);
        }
    }

    fn basis_ext_block(
        &self,
        ext: &BasisExtView<'_>,
        src: &[u64],
        n: usize,
        range: Range<usize>,
        cols: &mut [&mut [u64]],
    ) {
        let l = ext.source_moduli.len();
        let base = range.start;
        let mut y = [0u64; 64];
        for k in range {
            // y_i = [x · Q̃_i]_{q_i}, plus the float excess estimate,
            // accumulated in ascending limb order (see the trait contract).
            let mut excess_est = 0.0f64;
            for i in 0..l {
                let c = ext.q_tilde[i];
                y[i] = ext.source_moduli[i].mul_shoup(src[i * n + k], c.value, c.shoup);
                excess_est += y[i] as f64 * ext.q_inv_f64[i];
            }
            let e = excess_est as u64;
            for (j, col) in cols.iter_mut().enumerate() {
                let pj = &ext.target_moduli[j];
                let mut acc = 0u128;
                for i in 0..l {
                    acc += y[i] as u128 * ext.q_star[j][i] as u128;
                    // Accumulate lazily; reduce when nearing overflow.
                    if i % 4 == 3 {
                        acc = pj.reduce_u128(acc) as u128;
                    }
                }
                let raw = pj.reduce_u128(acc);
                let correction = pj.mul(pj.reduce(e), ext.q_mod_target[j]);
                col[k - base] = pj.sub(raw, correction);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Unrolled backend: fixed-width blocks, lazy reduction.
// ---------------------------------------------------------------------------

/// Butterfly block width. Eight 64-bit lanes fill one AVX-512 register or
/// two AVX2 registers; the remainder loops handle shorter tails so any
/// power-of-two transform size stays exact.
const BLOCK: usize = 8;

/// Conditional subtraction — the only "reduction" the lazy kernels perform
/// per butterfly. Branchless-friendly: LLVM lowers this to a compare+select
/// in the blocked loops.
#[inline(always)]
fn csub(x: u64, q: u64) -> u64 {
    if x >= q {
        x - q
    } else {
        x
    }
}

/// Shoup multiplication **without** the final conditional subtraction:
/// returns `a·c mod q` as a half-reduced value in `[0, 2q)`. Valid for any
/// `a < 2^64` and reduced `c.value < q` (Harvey's bound).
#[inline(always)]
fn mul_shoup_lazy(a: u64, c: ShoupPair, q: u64) -> u64 {
    let q_hat = ((a as u128 * c.shoup as u128) >> 64) as u64;
    a.wrapping_mul(c.value).wrapping_sub(q_hat.wrapping_mul(q))
}

/// Fixed-width blocked butterflies with lazy reduction.
///
/// Invariant: butterfly operands stay in the half-reduced range `[0, 2q)`
/// across stages (values pass `[0, 4q)` transiently inside a butterfly,
/// safe because `q < 2^62`); the reduction to canonical `[0, q)` is a
/// single conditional subtraction at transform exit. The inner loops run in
/// `BLOCK`-wide (eight-lane) straight-line chunks so LLVM unrolls and
/// vectorizes them.
#[derive(Debug, Clone, Copy, Default)]
pub struct UnrolledBackend;

impl UnrolledBackend {
    /// Forward NTT leaving the output **half-reduced** in `[0, 2q)` — the
    /// lazy core of [`KernelBackend::ntt_forward`], exposed so the range
    /// invariant is directly testable (the `backend_proptests` suite
    /// asserts every pre-reduction value is `< 2q`).
    pub fn ntt_forward_lazy(&self, table: &NttTable, data: &mut [u64]) {
        let n = table.size();
        let q = table.modulus().value();
        let two_q = 2 * q;
        let roots = table.forward_roots();
        let mut t = n;
        let mut m = 1usize;
        while m < n {
            t >>= 1;
            for i in 0..m {
                let w = roots[m + i];
                let base = 2 * i * t;
                // Split the group into its (u, v) halves so the block loop
                // walks two dense slices in lockstep.
                let (us, vs) = data[base..base + 2 * t].split_at_mut(t);
                let mut ub = us.chunks_exact_mut(BLOCK);
                let mut vb = vs.chunks_exact_mut(BLOCK);
                for (uc, vc) in (&mut ub).zip(&mut vb) {
                    for k in 0..BLOCK {
                        let u0 = uc[k];
                        let tv = mul_shoup_lazy(vc[k], w, q);
                        uc[k] = csub(u0 + tv, two_q);
                        vc[k] = csub(u0 + two_q - tv, two_q);
                    }
                }
                for (u, v) in ub.into_remainder().iter_mut().zip(vb.into_remainder()) {
                    let u0 = *u;
                    let tv = mul_shoup_lazy(*v, w, q);
                    *u = csub(u0 + tv, two_q);
                    *v = csub(u0 + two_q - tv, two_q);
                }
            }
            m <<= 1;
        }
    }

    /// Inverse NTT butterflies **without** the final `N^{-1}` scaling,
    /// leaving the output half-reduced in `[0, 2q)` (testable range
    /// invariant, like [`UnrolledBackend::ntt_forward_lazy`]).
    pub fn ntt_inverse_lazy(&self, table: &NttTable, data: &mut [u64]) {
        let n = table.size();
        let q = table.modulus().value();
        let two_q = 2 * q;
        let roots = table.inverse_roots();
        let mut t = 1usize;
        let mut m = n;
        while m > 1 {
            let h = m >> 1;
            let mut base = 0usize;
            for i in 0..h {
                let w = roots[h + i];
                let (us, vs) = data[base..base + 2 * t].split_at_mut(t);
                let mut ub = us.chunks_exact_mut(BLOCK);
                let mut vb = vs.chunks_exact_mut(BLOCK);
                for (uc, vc) in (&mut ub).zip(&mut vb) {
                    for k in 0..BLOCK {
                        let u0 = uc[k];
                        let v0 = vc[k];
                        uc[k] = csub(u0 + v0, two_q);
                        vc[k] = mul_shoup_lazy(u0 + two_q - v0, w, q);
                    }
                }
                for (u, v) in ub.into_remainder().iter_mut().zip(vb.into_remainder()) {
                    let u0 = *u;
                    let v0 = *v;
                    *u = csub(u0 + v0, two_q);
                    *v = mul_shoup_lazy(u0 + two_q - v0, w, q);
                }
                base += 2 * t;
            }
            t <<= 1;
            m = h;
        }
    }
}

impl KernelBackend for UnrolledBackend {
    fn name(&self) -> &'static str {
        "unrolled"
    }

    fn ntt_forward(&self, table: &NttTable, data: &mut [u64]) {
        self.ntt_forward_lazy(table, data);
        // Stage exit: the single conditional subtraction back to [0, q).
        let q = table.modulus().value();
        for x in data.iter_mut() {
            *x = csub(*x, q);
        }
    }

    fn ntt_inverse(&self, table: &NttTable, data: &mut [u64]) {
        self.ntt_inverse_lazy(table, data);
        // Fold the final reduction into the N^{-1} normalization pass.
        let q = table.modulus().value();
        let n_inv = table.n_inv();
        for x in data.iter_mut() {
            *x = csub(mul_shoup_lazy(*x, n_inv, q), q);
        }
    }

    fn pointwise_add(&self, m: &Modulus, dst: &mut [u64], src: &[u64]) {
        let q = m.value();
        for (d, &s) in dst.iter_mut().zip(src) {
            *d = csub(*d + s, q);
        }
    }

    fn pointwise_sub(&self, m: &Modulus, dst: &mut [u64], src: &[u64]) {
        let q = m.value();
        for (d, &s) in dst.iter_mut().zip(src) {
            *d = csub(*d + q - s, q);
        }
    }

    fn pointwise_neg(&self, m: &Modulus, dst: &mut [u64]) {
        let q = m.value();
        for d in dst.iter_mut() {
            // q - x is in (0, q] for x in (0, q); csub maps q (x = 0) to 0.
            *d = csub(q - *d, q);
        }
    }

    fn pointwise_mul(&self, m: &Modulus, dst: &mut [u64], src: &[u64]) {
        let mut db = dst.chunks_exact_mut(BLOCK);
        let mut sb = src.chunks_exact(BLOCK);
        for (dc, sc) in (&mut db).zip(&mut sb) {
            for k in 0..BLOCK {
                dc[k] = m.mul(dc[k], sc[k]);
            }
        }
        for (d, &s) in db.into_remainder().iter_mut().zip(sb.remainder()) {
            *d = m.mul(*d, s);
        }
    }

    fn pointwise_mul_into(&self, m: &Modulus, a: &[u64], b: &[u64], out: &mut [u64]) {
        let mut ob = out.chunks_exact_mut(BLOCK);
        let mut ab = a.chunks_exact(BLOCK);
        let mut bb = b.chunks_exact(BLOCK);
        for ((oc, ac), bc) in (&mut ob).zip(&mut ab).zip(&mut bb) {
            for k in 0..BLOCK {
                oc[k] = m.mul(ac[k], bc[k]);
            }
        }
        for ((o, &x), &y) in ob
            .into_remainder()
            .iter_mut()
            .zip(ab.remainder())
            .zip(bb.remainder())
        {
            *o = m.mul(x, y);
        }
    }

    fn scale_shoup(&self, m: &Modulus, dst: &mut [u64], c: ShoupPair) {
        let q = m.value();
        for d in dst.iter_mut() {
            *d = csub(mul_shoup_lazy(*d, c, q), q);
        }
    }

    fn sub_scale_shoup(&self, m: &Modulus, minuend: &[u64], dst: &mut [u64], c: ShoupPair) {
        let q = m.value();
        for (d, &s) in dst.iter_mut().zip(minuend) {
            // Feed the half-reduced difference (< 2q) straight into the lazy
            // multiply — mul_shoup_lazy accepts any u64 multiplicand.
            *d = csub(mul_shoup_lazy(s + q - *d, c, q), q);
        }
    }

    fn add_scalar(&self, m: &Modulus, dst: &mut [u64], c: u64) {
        let q = m.value();
        for d in dst.iter_mut() {
            *d = csub(*d + c, q);
        }
    }

    fn sub_scalar(&self, m: &Modulus, dst: &mut [u64], c: u64) {
        let q = m.value();
        for d in dst.iter_mut() {
            *d = csub(*d + q - c, q);
        }
    }

    fn fma_pair(&self, m: &Modulus, d: &[u64], a: &[u64], b: &[u64], u: &mut [u64], v: &mut [u64]) {
        let mut db = d.chunks_exact(BLOCK);
        let mut ab = a.chunks_exact(BLOCK);
        let mut bb = b.chunks_exact(BLOCK);
        let mut ub = u.chunks_exact_mut(BLOCK);
        let mut vb = v.chunks_exact_mut(BLOCK);
        for ((((dc, ac), bc), uc), vc) in (&mut db)
            .zip(&mut ab)
            .zip(&mut bb)
            .zip(&mut ub)
            .zip(&mut vb)
        {
            for k in 0..BLOCK {
                uc[k] = m.mul_add(dc[k], ac[k], uc[k]);
            }
            for k in 0..BLOCK {
                vc[k] = m.mul_add(dc[k], bc[k], vc[k]);
            }
        }
        let (dr, ar, br) = (db.remainder(), ab.remainder(), bb.remainder());
        let ur = ub.into_remainder();
        let vr = vb.into_remainder();
        for k in 0..dr.len() {
            ur[k] = m.mul_add(dr[k], ar[k], ur[k]);
            vr[k] = m.mul_add(dr[k], br[k], vr[k]);
        }
    }

    fn basis_ext_block(
        &self,
        ext: &BasisExtView<'_>,
        src: &[u64],
        n: usize,
        range: Range<usize>,
        cols: &mut [&mut [u64]],
    ) {
        let l = ext.source_moduli.len();
        let base = range.start;
        // Process the slot block in fixed-width chunks: compute the y row
        // and the excess estimate for BLOCK slots at a time, then sweep the
        // target limbs over the chunk. The excess estimate accumulates in
        // ascending limb order per slot — identical float rounding to the
        // scalar path (trait contract), so the recovered excess matches
        // bit-for-bit.
        let mut k = range.start;
        let mut y = [[0u64; 64]; BLOCK];
        let mut e = [0u64; BLOCK];
        while k < range.end {
            let w = BLOCK.min(range.end - k);
            for (s, (ys, es)) in y.iter_mut().zip(e.iter_mut()).enumerate().take(w) {
                let mut est = 0.0f64;
                let col = k + s;
                for i in 0..l {
                    let c = ext.q_tilde[i];
                    let qi = ext.source_moduli[i].value();
                    let yi = csub(mul_shoup_lazy(src[i * n + col], c, qi), qi);
                    ys[i] = yi;
                    est += yi as f64 * ext.q_inv_f64[i];
                }
                *es = est as u64;
            }
            for (j, col_out) in cols.iter_mut().enumerate() {
                let pj = &ext.target_moduli[j];
                let row = &ext.q_star[j];
                for s in 0..w {
                    let ys = &y[s];
                    let mut acc = 0u128;
                    for i in 0..l {
                        acc += ys[i] as u128 * row[i] as u128;
                        if i % 4 == 3 {
                            acc = pj.reduce_u128(acc) as u128;
                        }
                    }
                    let raw = pj.reduce_u128(acc);
                    let correction = pj.mul(pj.reduce(e[s]), ext.q_mod_target[j]);
                    col_out[k + s - base] = pj.sub(raw, correction);
                }
            }
            k += w;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prime::generate_ntt_primes;

    #[test]
    fn selection_precedence_and_names() {
        assert_eq!(BackendKind::from_name("scalar"), Some(BackendKind::Scalar));
        assert_eq!(
            BackendKind::from_name("UNROLLED"),
            Some(BackendKind::Unrolled)
        );
        assert_eq!(BackendKind::from_name("auto"), Some(best_available()));
        assert_eq!(BackendKind::from_name("gpu"), None);
        assert_eq!(
            resolve(Some(BackendKind::Scalar)).name(),
            "scalar",
            "explicit preference must win"
        );
        assert_eq!(BackendKind::Scalar.name(), "scalar");
        assert_eq!(BackendKind::Unrolled.name(), "unrolled");
    }

    #[test]
    fn shoup_pair_matches_modulus_shoup() {
        let m = Modulus::new((1 << 50) - 27).unwrap();
        let pairs = ShoupPair::table(&m, &[1, 42, m.value() - 1]);
        for p in pairs {
            assert_eq!(p.shoup, m.shoup(p.value));
        }
    }

    #[test]
    fn lazy_mul_is_half_reduced() {
        let m = Modulus::new((1 << 61) - 1).unwrap();
        let q = m.value();
        let c = ShoupPair::new(&m, 0x1234_5678_9abc % q);
        for a in [0u64, 1, q - 1, q, 2 * q - 1, u64::MAX] {
            let r = mul_shoup_lazy(a, c, q);
            assert!(r < 2 * q, "a={a}: {r} >= 2q");
            assert_eq!(csub(r, q), m.mul(m.reduce(a), c.value));
        }
    }

    #[test]
    fn unrolled_matches_scalar_on_odd_sizes() {
        // Sizes below/around the block width exercise every remainder loop.
        for n in [2usize, 4, 8, 16, 32] {
            let q = generate_ntt_primes(1, 40, n)[0];
            let ts = NttTable::with_backend(q, n, BackendKind::Scalar.instance()).unwrap();
            let tu = NttTable::with_backend(q, n, BackendKind::Unrolled.instance()).unwrap();
            let data: Vec<u64> = (0..n as u64).map(|i| (i * 7 + 3) % q).collect();
            let mut a = data.clone();
            let mut b = data.clone();
            ts.forward(&mut a);
            tu.forward(&mut b);
            assert_eq!(a, b, "forward n={n}");
            ts.inverse(&mut a);
            tu.inverse(&mut b);
            assert_eq!(a, b, "inverse n={n}");
            assert_eq!(a, data, "round trip n={n}");
        }
    }
}
