//! Feature-gated op-count, traffic, and memory-access-trace telemetry for
//! the ring kernels.
//!
//! The MAD paper's conclusions rest on SimFHE's analytical op counts and
//! DRAM-transfer estimates (`simfhe::primitives`); this module measures what
//! the functional kernels *actually* execute so the two can be
//! cross-validated (the `validate` and `simfhe trace` binaries in
//! `crates/core`). Counters follow the paper's accounting granularity:
//!
//! - **Modular multiplications / additions** (Section 4.1: "SimFHE tracks
//!   compute at the modular arithmetic level"). Butterflies count as
//!   1 mult + 2 adds, matching `SchemeParams::ntt_ops`.
//! - **Whole-limb NTT / iNTT transforms** — the limb-wise kernel
//!   invocations whose count the model predicts exactly (e.g. `ModUp` at
//!   `ℓ` limbs runs `d` inverse and `ℓ + k − d` forward transforms).
//! - **Basis-extension terms** — the `src·dst` `NewLimb` inner-product
//!   terms of Eq. 1, the slot-wise kernel's work measure.
//! - **Transfer bytes** — a DRAM-traffic proxy: every instrumented kernel
//!   records the limb-buffer bytes it streams (reads/writes). Separately,
//!   [`crate::scratch::ScratchPool`] records leased bytes
//!   ([`Snapshot::scratch_lease_bytes`]) so working-set pressure and
//!   streamed traffic can be told apart. See DESIGN.md for how this maps
//!   onto the paper's per-`CachingLevel` DRAM model.
//!
//! With the `telemetry` cargo feature **off** (the default) every recording
//! function is an empty `#[inline(always)]` stub and [`Span`] is a
//! zero-sized type: the kernels compile exactly as before. With the feature
//! **on**, counters are process-global relaxed atomics — global rather than
//! thread-local because the `parallel` feature runs limb kernels on scoped
//! worker threads whose counts must aggregate. Recording happens in *bulk*
//! at kernel loop boundaries (once per transform, once per `extend_flat`),
//! never per scalar operation, so even the instrumented build stays cheap.
//!
//! # Spans
//!
//! A [`Span`] snapshots the counters when opened and records the delta
//! under its name when dropped. Spans are **inclusive**: a nested span's
//! ops are also attributed to every enclosing span (`KeySwitch` contains
//! its `ModUp` and `ModDown` children). [`reset`] zeroes the counters and
//! clears the span table.
//!
//! ```
//! use fhe_math::telemetry;
//!
//! telemetry::reset();
//! {
//!     let _s = telemetry::span("demo");
//!     telemetry::record_ops(10, 20);
//! }
//! let snap = telemetry::snapshot();
//! # if telemetry::enabled() {
//! assert_eq!(snap.mults, 10);
//! assert_eq!(telemetry::spans()[0].total.adds, 20);
//! # }
//! ```
//!
//! # Memory-access tracing
//!
//! On top of the aggregate counters, the module can record an *ordered
//! trace* of limb-buffer touches for cache-replay simulation
//! (`simfhe::trace`). Each [`RnsPoly`](crate::poly::RnsPoly) carries an
//! [`OperandTag`] — a stable [`new_operand_id`] plus an [`OperandClass`]
//! matching the paper's DRAM categories (ciphertext limb, switching-key
//! digit, plaintext constant, scratch) — and the instrumented kernels emit
//! one [`TraceRecord::Touch`] per operand streamed. Because kernels write
//! their outputs *before* the `ckks` layer wraps them in a ciphertext or
//! key, classes may be assigned late: [`record_retag`] appends a
//! [`TraceRecord::Retag`] and replay resolves each id to its **last**
//! recorded class.
//!
//! Tracing is runtime-gated on top of the compile-time feature: records
//! are only buffered between [`trace_start`] and [`trace_stop`], so the
//! plain `telemetry` configuration (op-count validation) never pays for
//! trace storage. [`Span`]s emit [`TraceRecord::SpanBegin`]/
//! [`TraceRecord::SpanEnd`] pairs with microsecond timestamps while a
//! trace is active, which `simfhe trace` exports as Chrome trace-event
//! JSON for Perfetto.

/// Whether the `telemetry` cargo feature is compiled in.
pub const fn enabled() -> bool {
    cfg!(feature = "telemetry")
}

/// A point-in-time copy of every counter (also used for span deltas).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Modular multiplications.
    pub mults: u64,
    /// Modular additions/subtractions.
    pub adds: u64,
    /// Whole-limb forward NTT transforms.
    pub ntt_fwd: u64,
    /// Whole-limb inverse NTT transforms.
    pub ntt_inv: u64,
    /// Basis-extension (`NewLimb`) inner-product terms: `src·dst` per
    /// coefficient converted.
    pub ext_terms: u64,
    /// Limb-buffer bytes read by instrumented kernels.
    pub bytes_read: u64,
    /// Limb-buffer bytes written by instrumented kernels.
    pub bytes_written: u64,
    /// Buffers leased from a [`crate::ScratchPool`].
    pub scratch_leases: u64,
    /// Total bytes of those leases (working-set pressure, *not* streamed
    /// traffic — see [`Snapshot::transfer_bytes`] for that).
    pub scratch_lease_bytes: u64,
}

impl Snapshot {
    /// Total modular operations (`mults + adds`), the paper's `ops`.
    pub fn ops(&self) -> u64 {
        self.mults + self.adds
    }

    /// Total whole-limb transforms (`ntt_fwd + ntt_inv`).
    pub fn transforms(&self) -> u64 {
        self.ntt_fwd + self.ntt_inv
    }

    /// Total limb-buffer bytes streamed by instrumented kernels
    /// (`bytes_read + bytes_written`) — the DRAM-traffic proxy. Scratch
    /// leases are accounted separately in
    /// [`scratch_lease_bytes`](Snapshot::scratch_lease_bytes).
    pub fn transfer_bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Counter-wise difference `self − earlier`, saturating at zero (a
    /// [`reset`] between the two snapshots must not panic).
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        Snapshot {
            mults: self.mults.saturating_sub(earlier.mults),
            adds: self.adds.saturating_sub(earlier.adds),
            ntt_fwd: self.ntt_fwd.saturating_sub(earlier.ntt_fwd),
            ntt_inv: self.ntt_inv.saturating_sub(earlier.ntt_inv),
            ext_terms: self.ext_terms.saturating_sub(earlier.ext_terms),
            bytes_read: self.bytes_read.saturating_sub(earlier.bytes_read),
            bytes_written: self.bytes_written.saturating_sub(earlier.bytes_written),
            scratch_leases: self.scratch_leases.saturating_sub(earlier.scratch_leases),
            scratch_lease_bytes: self
                .scratch_lease_bytes
                .saturating_sub(earlier.scratch_lease_bytes),
        }
    }

    /// Counter-wise sum.
    pub fn accumulate(&mut self, other: &Snapshot) {
        self.mults += other.mults;
        self.adds += other.adds;
        self.ntt_fwd += other.ntt_fwd;
        self.ntt_inv += other.ntt_inv;
        self.ext_terms += other.ext_terms;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.scratch_leases += other.scratch_leases;
        self.scratch_lease_bytes += other.scratch_lease_bytes;
    }
}

/// The paper's DRAM-traffic operand categories (Table 2 columns
/// `ct_read`/`ct_write`/`key_read`/`pt_read`), used to attribute each
/// traced memory touch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OperandClass {
    /// A ciphertext component (`c_0`/`c_1`) or tensor leg.
    Ciphertext,
    /// Switching-key material (digit pairs, public key, embedded secret).
    Key,
    /// An encoded plaintext / constant.
    Plaintext,
    /// An untagged intermediate (raised digits, pool temporaries).
    Scratch,
}

impl OperandClass {
    /// Stable lowercase name (used in exports and reports).
    pub fn name(self) -> &'static str {
        match self {
            OperandClass::Ciphertext => "ct",
            OperandClass::Key => "key",
            OperandClass::Plaintext => "pt",
            OperandClass::Scratch => "scratch",
        }
    }
}

/// The identity of one traced limb buffer: a stable id (unique per
/// allocation, from [`new_operand_id`]) plus its current [`OperandClass`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct OperandTag {
    /// Paper traffic category.
    pub class: OperandClass,
    /// Process-unique buffer identity.
    pub id: u64,
}

impl OperandTag {
    /// A fresh scratch-class tag with a new unique id — the birth state of
    /// every polynomial until a `ckks` wrapper reclassifies it.
    pub fn scratch() -> Self {
        OperandTag {
            class: OperandClass::Scratch,
            id: new_operand_id(),
        }
    }
}

/// One event in a recorded memory-access trace (in program order).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceRecord {
    /// A kernel streamed `bytes` of the operand starting at byte `offset`
    /// within its buffer.
    Touch {
        /// Operand identity at touch time (class may be superseded by a
        /// later [`TraceRecord::Retag`]).
        tag: OperandTag,
        /// True for a write, false for a read.
        write: bool,
        /// Byte offset of the touched range within the operand.
        offset: u64,
        /// Length of the touched range in bytes.
        bytes: u64,
    },
    /// Operand `id` was reclassified (e.g. a scratch output wrapped into a
    /// ciphertext). Replay resolves each id to its *last* recorded class.
    Retag {
        /// The operand being reclassified.
        id: u64,
        /// Its new class.
        class: OperandClass,
    },
    /// An RAII [`Span`] named `name` opened `ts_us` microseconds after
    /// [`trace_start`].
    SpanBegin {
        /// Span name.
        name: &'static str,
        /// Microseconds since the trace started.
        ts_us: u64,
    },
    /// The matching span close.
    SpanEnd {
        /// Span name.
        name: &'static str,
        /// Microseconds since the trace started.
        ts_us: u64,
    },
}

#[cfg(feature = "telemetry")]
mod state {
    use super::{Snapshot, TraceRecord};
    use std::collections::BTreeMap;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
    use std::sync::Mutex;
    use std::time::Instant;

    pub(super) static MULTS: AtomicU64 = AtomicU64::new(0);
    pub(super) static ADDS: AtomicU64 = AtomicU64::new(0);
    pub(super) static NTT_FWD: AtomicU64 = AtomicU64::new(0);
    pub(super) static NTT_INV: AtomicU64 = AtomicU64::new(0);
    pub(super) static EXT_TERMS: AtomicU64 = AtomicU64::new(0);
    pub(super) static BYTES_READ: AtomicU64 = AtomicU64::new(0);
    pub(super) static BYTES_WRITTEN: AtomicU64 = AtomicU64::new(0);
    pub(super) static SCRATCH_LEASES: AtomicU64 = AtomicU64::new(0);
    pub(super) static SCRATCH_BYTES: AtomicU64 = AtomicU64::new(0);
    pub(super) static KEY_EXPANSIONS: AtomicU64 = AtomicU64::new(0);
    pub(super) static KEY_EXPANSION_BYTES: AtomicU64 = AtomicU64::new(0);

    /// Aggregated span deltas keyed by span name.
    pub(super) static SPANS: Mutex<BTreeMap<&'static str, (u64, Snapshot)>> =
        Mutex::new(BTreeMap::new());

    /// Monotonic operand-id source (0 is reserved as "untagged").
    pub(super) static NEXT_OPERAND_ID: AtomicU64 = AtomicU64::new(1);

    /// Fast path: is a trace being recorded right now?
    pub(super) static TRACE_ON: AtomicBool = AtomicBool::new(false);

    pub(super) struct TraceState {
        pub start: Instant,
        pub records: Vec<TraceRecord>,
    }

    pub(super) static TRACE: Mutex<Option<TraceState>> = Mutex::new(None);

    pub(super) fn add(counter: &AtomicU64, v: u64) {
        if v != 0 {
            counter.fetch_add(v, Relaxed);
        }
    }

    pub(super) fn push_trace(record: TraceRecord) {
        if let Some(ts) = TRACE.lock().expect("poisoned").as_mut() {
            ts.records.push(record);
        }
    }

    pub(super) fn trace_elapsed_us() -> u64 {
        TRACE
            .lock()
            .expect("poisoned")
            .as_ref()
            .map(|ts| ts.start.elapsed().as_micros() as u64)
            .unwrap_or(0)
    }

    pub(super) fn read_all() -> Snapshot {
        Snapshot {
            mults: MULTS.load(Relaxed),
            adds: ADDS.load(Relaxed),
            ntt_fwd: NTT_FWD.load(Relaxed),
            ntt_inv: NTT_INV.load(Relaxed),
            ext_terms: EXT_TERMS.load(Relaxed),
            bytes_read: BYTES_READ.load(Relaxed),
            bytes_written: BYTES_WRITTEN.load(Relaxed),
            scratch_leases: SCRATCH_LEASES.load(Relaxed),
            scratch_lease_bytes: SCRATCH_BYTES.load(Relaxed),
        }
    }
}

/// Records bulk modular operations (`mults` multiplications, `adds`
/// additions/subtractions).
#[inline(always)]
pub fn record_ops(mults: u64, adds: u64) {
    #[cfg(feature = "telemetry")]
    {
        state::add(&state::MULTS, mults);
        state::add(&state::ADDS, adds);
    }
    #[cfg(not(feature = "telemetry"))]
    let _ = (mults, adds);
}

/// Records one whole-limb NTT transform of `n` coefficients with
/// `butterflies` butterfly stages-worth of work (1 mult + 2 adds each),
/// plus the limb's streaming traffic.
#[inline(always)]
pub fn record_ntt(forward: bool, butterflies: u64, n: u64) {
    #[cfg(feature = "telemetry")]
    {
        if forward {
            state::add(&state::NTT_FWD, 1);
        } else {
            state::add(&state::NTT_INV, 1);
        }
        state::add(&state::MULTS, butterflies);
        state::add(&state::ADDS, 2 * butterflies);
        state::add(&state::BYTES_READ, 8 * n);
        state::add(&state::BYTES_WRITTEN, 8 * n);
    }
    #[cfg(not(feature = "telemetry"))]
    let _ = (forward, butterflies, n);
}

/// Records one bulk fast-basis-extension call (`NewLimb`, Eq. 1) converting
/// `n` coefficients from `src` to `dst` limbs: per coefficient, `src`
/// scaled-residue mults, `src·dst` inner-product terms (1 mult + 1 add
/// each), and `dst` float-excess corrections (1 mult + 1 sub each).
#[inline(always)]
pub fn record_basis_ext(src: u64, dst: u64, n: u64) {
    #[cfg(feature = "telemetry")]
    {
        state::add(&state::MULTS, n * (src + src * dst + dst));
        state::add(&state::ADDS, n * (src * dst + dst));
        state::add(&state::EXT_TERMS, n * src * dst);
        state::add(&state::BYTES_READ, 8 * src * n);
        state::add(&state::BYTES_WRITTEN, 8 * dst * n);
    }
    #[cfg(not(feature = "telemetry"))]
    let _ = (src, dst, n);
}

/// Records limb-buffer streaming traffic in bytes.
#[inline(always)]
pub fn record_transfer(read: u64, written: u64) {
    #[cfg(feature = "telemetry")]
    {
        state::add(&state::BYTES_READ, read);
        state::add(&state::BYTES_WRITTEN, written);
    }
    #[cfg(not(feature = "telemetry"))]
    let _ = (read, written);
}

/// Records one scratch-pool lease of `bytes` bytes.
#[inline(always)]
pub fn record_scratch_lease(bytes: u64) {
    #[cfg(feature = "telemetry")]
    {
        state::add(&state::SCRATCH_LEASES, 1);
        state::add(&state::SCRATCH_BYTES, bytes);
    }
    #[cfg(not(feature = "telemetry"))]
    let _ = bytes;
}

/// Records one switching-key expansion: a compute-for-memory event where a
/// seeded (compressed) key was regenerated into its full `2 × dnum`
/// polynomial form, producing `bytes` bytes of expanded key material. The
/// serving runtime's key cache calls this on every miss, making the
/// paper's §3.2 regeneration trade visible next to the kernel counters.
#[inline(always)]
pub fn record_key_expansion(bytes: u64) {
    #[cfg(feature = "telemetry")]
    {
        state::add(&state::KEY_EXPANSIONS, 1);
        state::add(&state::KEY_EXPANSION_BYTES, bytes);
    }
    #[cfg(not(feature = "telemetry"))]
    let _ = bytes;
}

/// Totals recorded by [`record_key_expansion`] since the last [`reset`]:
/// `(expansion count, expanded bytes)`. Zero with the feature off.
pub fn key_expansion_totals() -> (u64, u64) {
    #[cfg(feature = "telemetry")]
    {
        use std::sync::atomic::Ordering::Relaxed;
        (
            state::KEY_EXPANSIONS.load(Relaxed),
            state::KEY_EXPANSION_BYTES.load(Relaxed),
        )
    }
    #[cfg(not(feature = "telemetry"))]
    (0, 0)
}

/// Allocates a fresh process-unique operand id (never 0).
///
/// With the feature off this returns 0 — callers only mint ids from
/// feature-gated code, so the stub is never observable.
#[inline(always)]
pub fn new_operand_id() -> u64 {
    #[cfg(feature = "telemetry")]
    {
        use std::sync::atomic::Ordering::Relaxed;
        state::NEXT_OPERAND_ID.fetch_add(1, Relaxed)
    }
    #[cfg(not(feature = "telemetry"))]
    0
}

/// True while a trace is being recorded ([`trace_start`] .. [`trace_stop`]).
#[inline(always)]
pub fn trace_active() -> bool {
    #[cfg(feature = "telemetry")]
    {
        use std::sync::atomic::Ordering::Relaxed;
        state::TRACE_ON.load(Relaxed)
    }
    #[cfg(not(feature = "telemetry"))]
    false
}

/// Begins recording a memory-access trace, discarding any prior one.
///
/// No-op with the feature off.
pub fn trace_start() {
    #[cfg(feature = "telemetry")]
    {
        use std::sync::atomic::Ordering::Relaxed;
        let mut trace = state::TRACE.lock().expect("poisoned");
        *trace = Some(state::TraceState {
            start: std::time::Instant::now(),
            records: Vec::new(),
        });
        state::TRACE_ON.store(true, Relaxed);
    }
}

/// Begins recording only if no trace is already active, so an
/// opportunistic caller (e.g. the serving runtime's sampled deep
/// tracing) never discards a deliberately-started trace. Returns
/// whether recording started; the caller owns the matching
/// [`trace_stop`] only when it did.
///
/// Always `false` with the feature off.
pub fn trace_try_start() -> bool {
    #[cfg(feature = "telemetry")]
    {
        use std::sync::atomic::Ordering::Relaxed;
        let mut trace = state::TRACE.lock().expect("poisoned");
        if trace.is_some() {
            return false;
        }
        *trace = Some(state::TraceState {
            start: std::time::Instant::now(),
            records: Vec::new(),
        });
        state::TRACE_ON.store(true, Relaxed);
        true
    }
    #[cfg(not(feature = "telemetry"))]
    false
}

/// Stops recording and returns the trace in program order.
///
/// Returns an empty vector if no trace was active (or the feature is off).
pub fn trace_stop() -> Vec<TraceRecord> {
    #[cfg(feature = "telemetry")]
    {
        use std::sync::atomic::Ordering::Relaxed;
        state::TRACE_ON.store(false, Relaxed);
        state::TRACE
            .lock()
            .expect("poisoned")
            .take()
            .map(|ts| ts.records)
            .unwrap_or_default()
    }
    #[cfg(not(feature = "telemetry"))]
    Vec::new()
}

/// Records one streamed touch of `bytes` bytes at `offset` within the
/// operand identified by `tag`. Only buffered while a trace is active.
#[inline(always)]
pub fn record_touch(tag: OperandTag, write: bool, offset: u64, bytes: u64) {
    #[cfg(feature = "telemetry")]
    {
        if trace_active() && bytes != 0 {
            state::push_trace(TraceRecord::Touch {
                tag,
                write,
                offset,
                bytes,
            });
        }
    }
    #[cfg(not(feature = "telemetry"))]
    let _ = (tag, write, offset, bytes);
}

/// Records that operand `id` now belongs to `class` (last retag wins at
/// replay). Only buffered while a trace is active.
#[inline(always)]
pub fn record_retag(id: u64, class: OperandClass) {
    #[cfg(feature = "telemetry")]
    {
        if trace_active() && id != 0 {
            state::push_trace(TraceRecord::Retag { id, class });
        }
    }
    #[cfg(not(feature = "telemetry"))]
    let _ = (id, class);
}

/// Reads every counter.
///
/// Always available; with the feature off all fields are zero.
pub fn snapshot() -> Snapshot {
    #[cfg(feature = "telemetry")]
    {
        state::read_all()
    }
    #[cfg(not(feature = "telemetry"))]
    Snapshot::default()
}

/// Zeroes every counter and clears the span table.
///
/// Does **not** touch an in-flight trace; use [`trace_stop`] for that.
pub fn reset() {
    #[cfg(feature = "telemetry")]
    {
        use std::sync::atomic::Ordering::Relaxed;
        state::MULTS.store(0, Relaxed);
        state::ADDS.store(0, Relaxed);
        state::NTT_FWD.store(0, Relaxed);
        state::NTT_INV.store(0, Relaxed);
        state::EXT_TERMS.store(0, Relaxed);
        state::BYTES_READ.store(0, Relaxed);
        state::BYTES_WRITTEN.store(0, Relaxed);
        state::SCRATCH_LEASES.store(0, Relaxed);
        state::SCRATCH_BYTES.store(0, Relaxed);
        state::KEY_EXPANSIONS.store(0, Relaxed);
        state::KEY_EXPANSION_BYTES.store(0, Relaxed);
        state::SPANS.lock().expect("poisoned").clear();
    }
}

/// Aggregated measurements for one span name.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanReport {
    /// The name passed to [`span`].
    pub name: &'static str,
    /// How many spans closed under this name since the last [`reset`].
    pub calls: u64,
    /// Summed counter deltas over those spans (inclusive of nested spans).
    pub total: Snapshot,
}

/// All spans closed since the last [`reset`], sorted by name.
///
/// Empty with the feature off.
pub fn spans() -> Vec<SpanReport> {
    #[cfg(feature = "telemetry")]
    {
        state::SPANS
            .lock()
            .expect("poisoned")
            .iter()
            .map(|(&name, &(calls, total))| SpanReport { name, calls, total })
            .collect()
    }
    #[cfg(not(feature = "telemetry"))]
    Vec::new()
}

/// The aggregate for one span name, if any span closed under it.
pub fn span_report(name: &str) -> Option<SpanReport> {
    spans().into_iter().find(|s| s.name == name)
}

/// An RAII measurement region: snapshots the counters now, records the
/// delta under `name` when dropped. See the module docs for nesting
/// semantics. Zero-sized no-op with the feature off.
///
/// While a trace is active the span additionally emits
/// [`TraceRecord::SpanBegin`]/[`TraceRecord::SpanEnd`] markers.
#[must_use = "a span measures until dropped"]
pub struct Span {
    #[cfg(feature = "telemetry")]
    name: &'static str,
    #[cfg(feature = "telemetry")]
    start: Snapshot,
}

/// Opens a [`Span`] named `name`.
pub fn span(name: &'static str) -> Span {
    #[cfg(feature = "telemetry")]
    {
        if trace_active() {
            let ts_us = state::trace_elapsed_us();
            state::push_trace(TraceRecord::SpanBegin { name, ts_us });
        }
        Span {
            name,
            start: snapshot(),
        }
    }
    #[cfg(not(feature = "telemetry"))]
    {
        let _ = name;
        Span {}
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        #[cfg(feature = "telemetry")]
        {
            let delta = snapshot().delta(&self.start);
            let mut spans = state::SPANS.lock().expect("poisoned");
            let entry = spans.entry(self.name).or_insert((0, Snapshot::default()));
            entry.0 += 1;
            entry.1.accumulate(&delta);
            drop(spans);
            if trace_active() {
                let ts_us = state::trace_elapsed_us();
                state::push_trace(TraceRecord::SpanEnd {
                    name: self.name,
                    ts_us,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Counter semantics (reset, nesting, concurrency) are exercised by the
    // dedicated integration test `tests/telemetry_semantics.rs`, which owns
    // its process — the global counters make in-process unit tests racy
    // under `cargo test`'s threaded runner. Here we only check the
    // feature-independent Snapshot arithmetic.

    #[test]
    fn snapshot_delta_saturates() {
        let a = Snapshot {
            mults: 5,
            adds: 7,
            ..Snapshot::default()
        };
        let b = Snapshot {
            mults: 2,
            adds: 9,
            ..Snapshot::default()
        };
        let d = a.delta(&b);
        assert_eq!(d.mults, 3);
        assert_eq!(d.adds, 0); // saturated, not wrapped
        assert_eq!(a.ops(), 12);
    }

    #[test]
    fn snapshot_accumulate_sums_fields() {
        let mut acc = Snapshot::default();
        let x = Snapshot {
            mults: 1,
            adds: 2,
            ntt_fwd: 3,
            ntt_inv: 4,
            ext_terms: 5,
            bytes_read: 6,
            bytes_written: 7,
            scratch_leases: 8,
            scratch_lease_bytes: 9,
        };
        acc.accumulate(&x);
        acc.accumulate(&x);
        assert_eq!(acc.ntt_fwd, 6);
        assert_eq!(acc.transforms(), 14);
        assert_eq!(acc.transfer_bytes(), 26);
        assert_eq!(acc.scratch_lease_bytes, 18);
    }

    #[test]
    fn operand_class_names_are_stable() {
        assert_eq!(OperandClass::Ciphertext.name(), "ct");
        assert_eq!(OperandClass::Key.name(), "key");
        assert_eq!(OperandClass::Plaintext.name(), "pt");
        assert_eq!(OperandClass::Scratch.name(), "scratch");
    }

    #[test]
    fn fresh_tags_are_scratch_class() {
        let t = OperandTag::scratch();
        assert_eq!(t.class, OperandClass::Scratch);
        if enabled() {
            assert_ne!(t.id, 0, "ids start at 1 so 0 can mean untagged");
            assert_ne!(t.id, OperandTag::scratch().id, "ids are unique");
        }
    }
}
