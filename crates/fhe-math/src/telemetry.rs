//! Feature-gated op-count and traffic telemetry for the ring kernels.
//!
//! The MAD paper's conclusions rest on SimFHE's analytical op counts and
//! DRAM-transfer estimates (`simfhe::primitives`); this module measures what
//! the functional kernels *actually* execute so the two can be
//! cross-validated (the `validate` binary in `crates/core`). Counters follow
//! the paper's accounting granularity:
//!
//! - **Modular multiplications / additions** (Section 4.1: "SimFHE tracks
//!   compute at the modular arithmetic level"). Butterflies count as
//!   1 mult + 2 adds, matching `SchemeParams::ntt_ops`.
//! - **Whole-limb NTT / iNTT transforms** — the limb-wise kernel
//!   invocations whose count the model predicts exactly (e.g. `ModUp` at
//!   `ℓ` limbs runs `d` inverse and `ℓ + k − d` forward transforms).
//! - **Basis-extension terms** — the `src·dst` `NewLimb` inner-product
//!   terms of Eq. 1, the slot-wise kernel's work measure.
//! - **Bytes touched** — a DRAM-traffic proxy: every instrumented kernel
//!   records the limb-buffer bytes it streams (reads/writes), and
//!   [`crate::scratch::ScratchPool`] records leased bytes. See DESIGN.md
//!   for how this maps onto the paper's per-`CachingLevel` DRAM model.
//!
//! With the `telemetry` cargo feature **off** (the default) every recording
//! function is an empty `#[inline(always)]` stub and [`Span`] is a
//! zero-sized type: the kernels compile exactly as before. With the feature
//! **on**, counters are process-global relaxed atomics — global rather than
//! thread-local because the `parallel` feature runs limb kernels on scoped
//! worker threads whose counts must aggregate. Recording happens in *bulk*
//! at kernel loop boundaries (once per transform, once per `extend_flat`),
//! never per scalar operation, so even the instrumented build stays cheap.
//!
//! # Spans
//!
//! A [`Span`] snapshots the counters when opened and records the delta
//! under its name when dropped. Spans are **inclusive**: a nested span's
//! ops are also attributed to every enclosing span (`KeySwitch` contains
//! its `ModUp` and `ModDown` children). [`reset`] zeroes the counters and
//! clears the span table.
//!
//! ```
//! use fhe_math::telemetry;
//!
//! telemetry::reset();
//! {
//!     let _s = telemetry::span("demo");
//!     telemetry::record_ops(10, 20);
//! }
//! let snap = telemetry::snapshot();
//! # if telemetry::enabled() {
//! assert_eq!(snap.mults, 10);
//! assert_eq!(telemetry::spans()[0].total.adds, 20);
//! # }
//! ```

/// Whether the `telemetry` cargo feature is compiled in.
pub const fn enabled() -> bool {
    cfg!(feature = "telemetry")
}

/// A point-in-time copy of every counter (also used for span deltas).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Modular multiplications.
    pub mults: u64,
    /// Modular additions/subtractions.
    pub adds: u64,
    /// Whole-limb forward NTT transforms.
    pub ntt_fwd: u64,
    /// Whole-limb inverse NTT transforms.
    pub ntt_inv: u64,
    /// Basis-extension (`NewLimb`) inner-product terms: `src·dst` per
    /// coefficient converted.
    pub ext_terms: u64,
    /// Limb-buffer bytes read by instrumented kernels.
    pub bytes_read: u64,
    /// Limb-buffer bytes written by instrumented kernels.
    pub bytes_written: u64,
    /// Buffers leased from a [`crate::ScratchPool`].
    pub scratch_leases: u64,
    /// Total bytes of those leases.
    pub scratch_bytes: u64,
}

impl Snapshot {
    /// Total modular operations (`mults + adds`), the paper's `ops`.
    pub fn ops(&self) -> u64 {
        self.mults + self.adds
    }

    /// Total whole-limb transforms (`ntt_fwd + ntt_inv`).
    pub fn transforms(&self) -> u64 {
        self.ntt_fwd + self.ntt_inv
    }

    /// Total limb-buffer bytes touched (`bytes_read + bytes_written`).
    pub fn bytes_touched(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Counter-wise difference `self − earlier`, saturating at zero (a
    /// [`reset`] between the two snapshots must not panic).
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        Snapshot {
            mults: self.mults.saturating_sub(earlier.mults),
            adds: self.adds.saturating_sub(earlier.adds),
            ntt_fwd: self.ntt_fwd.saturating_sub(earlier.ntt_fwd),
            ntt_inv: self.ntt_inv.saturating_sub(earlier.ntt_inv),
            ext_terms: self.ext_terms.saturating_sub(earlier.ext_terms),
            bytes_read: self.bytes_read.saturating_sub(earlier.bytes_read),
            bytes_written: self.bytes_written.saturating_sub(earlier.bytes_written),
            scratch_leases: self.scratch_leases.saturating_sub(earlier.scratch_leases),
            scratch_bytes: self.scratch_bytes.saturating_sub(earlier.scratch_bytes),
        }
    }

    /// Counter-wise sum.
    pub fn accumulate(&mut self, other: &Snapshot) {
        self.mults += other.mults;
        self.adds += other.adds;
        self.ntt_fwd += other.ntt_fwd;
        self.ntt_inv += other.ntt_inv;
        self.ext_terms += other.ext_terms;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.scratch_leases += other.scratch_leases;
        self.scratch_bytes += other.scratch_bytes;
    }
}

#[cfg(feature = "telemetry")]
mod state {
    use super::Snapshot;
    use std::collections::BTreeMap;
    use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
    use std::sync::Mutex;

    pub(super) static MULTS: AtomicU64 = AtomicU64::new(0);
    pub(super) static ADDS: AtomicU64 = AtomicU64::new(0);
    pub(super) static NTT_FWD: AtomicU64 = AtomicU64::new(0);
    pub(super) static NTT_INV: AtomicU64 = AtomicU64::new(0);
    pub(super) static EXT_TERMS: AtomicU64 = AtomicU64::new(0);
    pub(super) static BYTES_READ: AtomicU64 = AtomicU64::new(0);
    pub(super) static BYTES_WRITTEN: AtomicU64 = AtomicU64::new(0);
    pub(super) static SCRATCH_LEASES: AtomicU64 = AtomicU64::new(0);
    pub(super) static SCRATCH_BYTES: AtomicU64 = AtomicU64::new(0);

    /// Aggregated span deltas keyed by span name.
    pub(super) static SPANS: Mutex<BTreeMap<&'static str, (u64, Snapshot)>> =
        Mutex::new(BTreeMap::new());

    pub(super) fn add(counter: &AtomicU64, v: u64) {
        if v != 0 {
            counter.fetch_add(v, Relaxed);
        }
    }

    pub(super) fn read_all() -> Snapshot {
        Snapshot {
            mults: MULTS.load(Relaxed),
            adds: ADDS.load(Relaxed),
            ntt_fwd: NTT_FWD.load(Relaxed),
            ntt_inv: NTT_INV.load(Relaxed),
            ext_terms: EXT_TERMS.load(Relaxed),
            bytes_read: BYTES_READ.load(Relaxed),
            bytes_written: BYTES_WRITTEN.load(Relaxed),
            scratch_leases: SCRATCH_LEASES.load(Relaxed),
            scratch_bytes: SCRATCH_BYTES.load(Relaxed),
        }
    }
}

/// Records bulk modular operations (`mults` multiplications, `adds`
/// additions/subtractions).
#[inline(always)]
pub fn record_ops(mults: u64, adds: u64) {
    #[cfg(feature = "telemetry")]
    {
        state::add(&state::MULTS, mults);
        state::add(&state::ADDS, adds);
    }
    #[cfg(not(feature = "telemetry"))]
    let _ = (mults, adds);
}

/// Records one whole-limb NTT transform of `n` coefficients with
/// `butterflies` butterfly stages-worth of work (1 mult + 2 adds each),
/// plus the limb's streaming traffic.
#[inline(always)]
pub fn record_ntt(forward: bool, butterflies: u64, n: u64) {
    #[cfg(feature = "telemetry")]
    {
        if forward {
            state::add(&state::NTT_FWD, 1);
        } else {
            state::add(&state::NTT_INV, 1);
        }
        state::add(&state::MULTS, butterflies);
        state::add(&state::ADDS, 2 * butterflies);
        state::add(&state::BYTES_READ, 8 * n);
        state::add(&state::BYTES_WRITTEN, 8 * n);
    }
    #[cfg(not(feature = "telemetry"))]
    let _ = (forward, butterflies, n);
}

/// Records one bulk fast-basis-extension call (`NewLimb`, Eq. 1) converting
/// `n` coefficients from `src` to `dst` limbs: per coefficient, `src`
/// scaled-residue mults, `src·dst` inner-product terms (1 mult + 1 add
/// each), and `dst` float-excess corrections (1 mult + 1 sub each).
#[inline(always)]
pub fn record_basis_ext(src: u64, dst: u64, n: u64) {
    #[cfg(feature = "telemetry")]
    {
        state::add(&state::MULTS, n * (src + src * dst + dst));
        state::add(&state::ADDS, n * (src * dst + dst));
        state::add(&state::EXT_TERMS, n * src * dst);
        state::add(&state::BYTES_READ, 8 * src * n);
        state::add(&state::BYTES_WRITTEN, 8 * dst * n);
    }
    #[cfg(not(feature = "telemetry"))]
    let _ = (src, dst, n);
}

/// Records limb-buffer streaming traffic in bytes.
#[inline(always)]
pub fn record_transfer(read: u64, written: u64) {
    #[cfg(feature = "telemetry")]
    {
        state::add(&state::BYTES_READ, read);
        state::add(&state::BYTES_WRITTEN, written);
    }
    #[cfg(not(feature = "telemetry"))]
    let _ = (read, written);
}

/// Records one scratch-pool lease of `bytes` bytes.
#[inline(always)]
pub fn record_scratch_lease(bytes: u64) {
    #[cfg(feature = "telemetry")]
    {
        state::add(&state::SCRATCH_LEASES, 1);
        state::add(&state::SCRATCH_BYTES, bytes);
    }
    #[cfg(not(feature = "telemetry"))]
    let _ = bytes;
}

/// Reads every counter.
///
/// Always available; with the feature off all fields are zero.
pub fn snapshot() -> Snapshot {
    #[cfg(feature = "telemetry")]
    {
        state::read_all()
    }
    #[cfg(not(feature = "telemetry"))]
    Snapshot::default()
}

/// Zeroes every counter and clears the span table.
pub fn reset() {
    #[cfg(feature = "telemetry")]
    {
        use std::sync::atomic::Ordering::Relaxed;
        state::MULTS.store(0, Relaxed);
        state::ADDS.store(0, Relaxed);
        state::NTT_FWD.store(0, Relaxed);
        state::NTT_INV.store(0, Relaxed);
        state::EXT_TERMS.store(0, Relaxed);
        state::BYTES_READ.store(0, Relaxed);
        state::BYTES_WRITTEN.store(0, Relaxed);
        state::SCRATCH_LEASES.store(0, Relaxed);
        state::SCRATCH_BYTES.store(0, Relaxed);
        state::SPANS.lock().expect("poisoned").clear();
    }
}

/// Aggregated measurements for one span name.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanReport {
    /// The name passed to [`span`].
    pub name: &'static str,
    /// How many spans closed under this name since the last [`reset`].
    pub calls: u64,
    /// Summed counter deltas over those spans (inclusive of nested spans).
    pub total: Snapshot,
}

/// All spans closed since the last [`reset`], sorted by name.
///
/// Empty with the feature off.
pub fn spans() -> Vec<SpanReport> {
    #[cfg(feature = "telemetry")]
    {
        state::SPANS
            .lock()
            .expect("poisoned")
            .iter()
            .map(|(&name, &(calls, total))| SpanReport { name, calls, total })
            .collect()
    }
    #[cfg(not(feature = "telemetry"))]
    Vec::new()
}

/// The aggregate for one span name, if any span closed under it.
pub fn span_report(name: &str) -> Option<SpanReport> {
    spans().into_iter().find(|s| s.name == name)
}

/// An RAII measurement region: snapshots the counters now, records the
/// delta under `name` when dropped. See the module docs for nesting
/// semantics. Zero-sized no-op with the feature off.
#[must_use = "a span measures until dropped"]
pub struct Span {
    #[cfg(feature = "telemetry")]
    name: &'static str,
    #[cfg(feature = "telemetry")]
    start: Snapshot,
}

/// Opens a [`Span`] named `name`.
pub fn span(name: &'static str) -> Span {
    #[cfg(feature = "telemetry")]
    {
        Span {
            name,
            start: snapshot(),
        }
    }
    #[cfg(not(feature = "telemetry"))]
    {
        let _ = name;
        Span {}
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        #[cfg(feature = "telemetry")]
        {
            let delta = snapshot().delta(&self.start);
            let mut spans = state::SPANS.lock().expect("poisoned");
            let entry = spans.entry(self.name).or_insert((0, Snapshot::default()));
            entry.0 += 1;
            entry.1.accumulate(&delta);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Counter semantics (reset, nesting, concurrency) are exercised by the
    // dedicated integration test `tests/telemetry_semantics.rs`, which owns
    // its process — the global counters make in-process unit tests racy
    // under `cargo test`'s threaded runner. Here we only check the
    // feature-independent Snapshot arithmetic.

    #[test]
    fn snapshot_delta_saturates() {
        let a = Snapshot {
            mults: 5,
            adds: 7,
            ..Snapshot::default()
        };
        let b = Snapshot {
            mults: 2,
            adds: 9,
            ..Snapshot::default()
        };
        let d = a.delta(&b);
        assert_eq!(d.mults, 3);
        assert_eq!(d.adds, 0); // saturated, not wrapped
        assert_eq!(a.ops(), 12);
    }

    #[test]
    fn snapshot_accumulate_sums_fields() {
        let mut acc = Snapshot::default();
        let x = Snapshot {
            mults: 1,
            adds: 2,
            ntt_fwd: 3,
            ntt_inv: 4,
            ext_terms: 5,
            bytes_read: 6,
            bytes_written: 7,
            scratch_leases: 8,
            scratch_bytes: 9,
        };
        acc.accumulate(&x);
        acc.accumulate(&x);
        assert_eq!(acc.ntt_fwd, 6);
        assert_eq!(acc.transforms(), 14);
        assert_eq!(acc.bytes_touched(), 26);
        assert_eq!(acc.scratch_bytes, 18);
    }
}
