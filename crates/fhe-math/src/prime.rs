//! Primality testing and NTT-friendly prime generation.
//!
//! CKKS limb moduli must satisfy `q ≡ 1 (mod 2N)` so that `Z_q` contains a
//! primitive `2N`-th root of unity, enabling the negacyclic NTT over
//! `Z_q[x]/(x^N + 1)`.

use crate::modular::Modulus;

/// Deterministic Miller–Rabin primality test for 64-bit integers.
///
/// Uses the fixed witness set `{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}`
/// which is known to be exact for all `n < 3.317e24`, covering `u64`.
///
/// # Example
///
/// ```
/// use fhe_math::prime::is_prime;
/// assert!(is_prime(65537));
/// assert!(!is_prime(65536));
/// ```
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for &p in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    // n - 1 = d · 2^s with d odd.
    let s = (n - 1).trailing_zeros();
    let d = (n - 1) >> s;
    'witness: for &a in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow_mod_u64(a % n, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..s - 1 {
            x = mul_mod_u64(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

#[inline]
fn mul_mod_u64(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

fn pow_mod_u64(mut a: u64, mut e: u64, m: u64) -> u64 {
    let mut acc = 1u64 % m;
    a %= m;
    while e > 0 {
        if e & 1 == 1 {
            acc = mul_mod_u64(acc, a, m);
        }
        a = mul_mod_u64(a, a, m);
        e >>= 1;
    }
    acc
}

/// Generates `count` distinct primes of (approximately) `bits` bits with
/// `q ≡ 1 (mod 2·degree)`, searching downward from `2^bits`.
///
/// The primes are returned in the order found (strictly decreasing). This is
/// the standard way RNS-CKKS implementations pick a modulus chain: the first
/// prime is closest to the target scaling factor `Δ = 2^bits`, minimizing the
/// rescale error.
///
/// # Panics
///
/// Panics if `degree` is not a power of two, or if fewer than `count` such
/// primes exist in `(2^(bits-1), 2^bits]` — callers control both and this
/// signals a parameter-selection bug, not a runtime condition.
///
/// # Example
///
/// ```
/// use fhe_math::prime::generate_ntt_primes;
/// let primes = generate_ntt_primes(3, 30, 1024);
/// assert_eq!(primes.len(), 3);
/// for q in primes {
///     assert_eq!(q % 2048, 1);
/// }
/// ```
pub fn generate_ntt_primes(count: usize, bits: u32, degree: usize) -> Vec<u64> {
    assert!(degree.is_power_of_two(), "degree must be a power of two");
    assert!((4..=61).contains(&bits), "prime size {bits} out of range");
    let step = 2 * degree as u64;
    let mut candidate = (1u64 << bits) + 1;
    // Move to the largest value ≡ 1 mod 2N at or below 2^bits.
    while candidate > 1u64 << bits {
        candidate -= step;
    }
    let mut primes = Vec::with_capacity(count);
    let floor = 1u64 << (bits - 1);
    while primes.len() < count && candidate > floor {
        if is_prime(candidate) {
            primes.push(candidate);
        }
        candidate -= step;
    }
    assert!(
        primes.len() == count,
        "only found {} of {count} NTT primes with {bits} bits for degree {degree}",
        primes.len()
    );
    primes
}

/// Generates `count` NTT-friendly primes of `bits` bits, *skipping* any prime
/// present in `exclude`. Used to build the special-modulus basis `P` disjoint
/// from the ciphertext basis `Q`.
pub fn generate_ntt_primes_excluding(
    count: usize,
    bits: u32,
    degree: usize,
    exclude: &[u64],
) -> Vec<u64> {
    // Over-generate and filter; the density of NTT primes is ample.
    let mut extra = count;
    loop {
        let all = generate_ntt_primes(count + extra, bits, degree);
        let filtered: Vec<u64> = all
            .into_iter()
            .filter(|q| !exclude.contains(q))
            .take(count)
            .collect();
        if filtered.len() == count {
            return filtered;
        }
        extra *= 2;
    }
}

/// Finds a generator of the multiplicative group `Z_q^*` for prime `q`
/// given the factorization of `q - 1` is not required: we only need an
/// element of order exactly `2n`, obtained by raising a group generator
/// candidate to the power `(q-1)/(2n)` and checking its order.
///
/// Returns a primitive `order`-th root of unity modulo `q`.
///
/// # Panics
///
/// Panics if `order` does not divide `q - 1`.
pub fn primitive_root_of_unity(q: &Modulus, order: u64) -> u64 {
    assert_eq!(
        (q.value() - 1) % order,
        0,
        "order {order} does not divide q-1 for q={}",
        q.value()
    );
    let cofactor = (q.value() - 1) / order;
    // Try small candidates; for prime q roughly half the elements raised to
    // the cofactor give a primitive order-th root.
    for candidate in 2..q.value() {
        let root = q.pow(candidate, cofactor);
        if is_primitive_root(q, root, order) {
            return root;
        }
    }
    unreachable!("no primitive root found — q={} not prime?", q.value())
}

/// Checks that `root` has multiplicative order exactly `order` (a power of
/// two) modulo `q`.
pub fn is_primitive_root(q: &Modulus, root: u64, order: u64) -> bool {
    debug_assert!(order.is_power_of_two());
    if root == 0 {
        return false;
    }
    // For power-of-two order it suffices that root^(order/2) == -1.
    q.pow(root, order / 2) == q.value() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_primes_classified() {
        let primes = [2u64, 3, 5, 7, 11, 13, 97, 65537, 4294967291];
        let composites = [0u64, 1, 4, 9, 15, 91, 65536, 4294967295, 3215031751];
        for p in primes {
            assert!(is_prime(p), "{p} should be prime");
        }
        for c in composites {
            assert!(!is_prime(c), "{c} should be composite");
        }
    }

    #[test]
    fn large_known_primes() {
        // 2^61 - 1 is a Mersenne prime; 2^62 - 1 = 3 · 715827883 · 2147483647.
        assert!(is_prime((1 << 61) - 1));
        assert!(!is_prime((1 << 62) - 1));
        // Strong pseudoprime to many bases, composite: 3825123056546413051.
        assert!(!is_prime(3825123056546413051));
    }

    #[test]
    fn generated_primes_are_ntt_friendly() {
        for degree in [64usize, 1024, 8192] {
            let primes = generate_ntt_primes(4, 45, degree);
            assert_eq!(primes.len(), 4);
            let mut sorted = primes.clone();
            sorted.dedup();
            assert_eq!(sorted.len(), 4, "primes must be distinct");
            for q in primes {
                assert!(is_prime(q));
                assert_eq!(q % (2 * degree as u64), 1);
                assert!(q < 1 << 45 && q > 1 << 44);
            }
        }
    }

    #[test]
    fn excluding_avoids_collisions() {
        let base = generate_ntt_primes(3, 30, 256);
        let extra = generate_ntt_primes_excluding(3, 30, 256, &base);
        for q in &extra {
            assert!(!base.contains(q));
        }
    }

    #[test]
    fn primitive_roots_have_exact_order() {
        let q = Modulus::new(generate_ntt_primes(1, 40, 2048)[0]).unwrap();
        let order = 4096u64;
        let root = primitive_root_of_unity(&q, order);
        assert_eq!(q.pow(root, order), 1);
        assert_eq!(q.pow(root, order / 2), q.value() - 1);
        assert!(is_primitive_root(&q, root, order));
        assert!(!is_primitive_root(&q, q.pow(root, 2), order));
    }
}
