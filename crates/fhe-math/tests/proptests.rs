//! Property-based tests of the number-theoretic substrate: field axioms,
//! transform identities, and exactness of the RNS machinery on arbitrary
//! inputs.

use fhe_math::automorph::Automorphism;
use fhe_math::bigint::UBig;
use fhe_math::cfft::{Complex, SpecialFft};
use fhe_math::poly::{mod_down, mod_up, pmod_up, ModDownContext, Representation, RnsPoly};
use fhe_math::prime::{generate_ntt_primes, generate_ntt_primes_excluding};
use fhe_math::rns::{BasisExtender, RnsBasis};
use fhe_math::{Modulus, NttTable};
use proptest::prelude::*;
use std::sync::Arc;

fn modulus_strategy() -> impl Strategy<Value = Modulus> {
    prop_oneof![
        Just(Modulus::new(65537).unwrap()),
        Just(Modulus::new((1 << 45) - 229).unwrap()),
        Just(Modulus::new((1 << 61) - 1).unwrap()),
        Just(Modulus::new(97).unwrap()),
    ]
}

proptest! {
    #[test]
    fn modular_ops_match_u128_reference(
        q in modulus_strategy(),
        a in any::<u64>(),
        b in any::<u64>(),
    ) {
        let (a, b) = (a % q.value(), b % q.value());
        let m = q.value() as u128;
        prop_assert_eq!(q.add(a, b) as u128, (a as u128 + b as u128) % m);
        prop_assert_eq!(q.sub(a, b) as u128, (a as u128 + m - b as u128) % m);
        prop_assert_eq!(q.mul(a, b) as u128, (a as u128 * b as u128) % m);
        prop_assert_eq!(q.neg(a) as u128, (m - a as u128) % m);
    }

    #[test]
    fn multiplication_distributes_over_addition(
        q in modulus_strategy(),
        a in any::<u64>(),
        b in any::<u64>(),
        c in any::<u64>(),
    ) {
        let (a, b, c) = (a % q.value(), b % q.value(), c % q.value());
        prop_assert_eq!(q.mul(a, q.add(b, c)), q.add(q.mul(a, b), q.mul(a, c)));
    }

    #[test]
    fn shoup_multiplication_matches_barrett(
        q in modulus_strategy(),
        a in any::<u64>(),
        b in any::<u64>(),
    ) {
        let (a, b) = (a % q.value(), b % q.value());
        let bs = q.shoup(b);
        prop_assert_eq!(q.mul_shoup(a, b, bs), q.mul(a, b));
    }

    #[test]
    fn inverse_is_two_sided(q in modulus_strategy(), a in 1u64..u64::MAX) {
        let a = a % q.value();
        prop_assume!(a != 0);
        if let Some(inv) = q.inv(a) {
            prop_assert_eq!(q.mul(a, inv), 1);
            prop_assert_eq!(q.mul(inv, a), 1);
        }
    }

    #[test]
    fn centered_representatives_roundtrip(q in modulus_strategy(), a in any::<u64>()) {
        let a = a % q.value();
        prop_assert_eq!(q.from_i64(q.to_centered(a)), a);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn ntt_roundtrip_on_random_polynomials(seed in any::<u64>()) {
        let n = 64usize;
        let q = generate_ntt_primes(1, 40, n)[0];
        let table = NttTable::new(q, n).unwrap();
        let mut data: Vec<u64> = (0..n as u64)
            .map(|i| (seed.wrapping_mul(i.wrapping_add(1)).wrapping_mul(0x9e3779b97f4a7c15)) % q)
            .collect();
        let orig = data.clone();
        table.forward(&mut data);
        table.inverse(&mut data);
        prop_assert_eq!(data, orig);
    }

    #[test]
    fn ntt_multiplication_is_commutative(sa in any::<u64>(), sb in any::<u64>()) {
        let n = 32usize;
        let q = generate_ntt_primes(1, 30, n)[0];
        let table = NttTable::new(q, n).unwrap();
        let m = *table.modulus();
        let gen = |s: u64| -> Vec<u64> {
            (0..n as u64).map(|i| s.wrapping_mul(i + 3) % q).collect()
        };
        let (mut a, mut b) = (gen(sa), gen(sb));
        table.forward(&mut a);
        table.forward(&mut b);
        let ab: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| m.mul(x, y)).collect();
        let ba: Vec<u64> = b.iter().zip(&a).map(|(&x, &y)| m.mul(x, y)).collect();
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn crt_roundtrip_arbitrary_residues(seed in any::<u64>()) {
        let n = 16usize;
        let primes = generate_ntt_primes(4, 28, n);
        let basis = RnsBasis::new(&primes, n).unwrap();
        let residues: Vec<u64> = primes
            .iter()
            .enumerate()
            .map(|(i, &p)| seed.wrapping_mul(0x9e3779b9).wrapping_add(i as u64 * 0xabcdef) % p)
            .collect();
        let x = basis.crt_reconstruct(&residues);
        for (i, &p) in primes.iter().enumerate() {
            prop_assert_eq!(x.rem_u64(p), residues[i]);
        }
        prop_assert!(x < basis.product());
    }

    #[test]
    fn basis_extension_is_exact_everywhere(seed in any::<u64>()) {
        let n = 16usize;
        let src_primes = generate_ntt_primes(3, 26, n);
        let dst_primes = generate_ntt_primes_excluding(3, 27, n, &src_primes);
        let src = RnsBasis::new(&src_primes, n).unwrap();
        let dst = RnsBasis::new(&dst_primes, n).unwrap();
        let ext = BasisExtender::new(&src, &dst);
        let residues: Vec<u64> = src_primes
            .iter()
            .enumerate()
            .map(|(i, &p)| seed.wrapping_mul(0x2545f491).wrapping_add(i as u64) % p)
            .collect();
        let x = src.crt_reconstruct(&residues);
        let mut out = vec![0u64; 3];
        ext.extend_coeff(&residues, &mut out);
        for (j, &p) in dst_primes.iter().enumerate() {
            prop_assert_eq!(out[j], x.rem_u64(p));
        }
    }

    #[test]
    fn automorphism_composition(k1 in 0usize..16, k2 in 0usize..16) {
        // σ_{k1} ∘ σ_{k2} = σ_{k1·k2 mod 2N} on coefficients.
        let n = 32usize;
        let two_n = 2 * n as u64;
        let (k1, k2) = (2 * k1 as u64 + 1, 2 * k2 as u64 + 1);
        let q = generate_ntt_primes(1, 28, n)[0];
        let table = NttTable::new(q, n).unwrap();
        let a1 = Automorphism::new(k1, &table);
        let a2 = Automorphism::new(k2, &table);
        let a12 = Automorphism::new((k1 * k2) % two_n, &table);
        let src: Vec<u64> = (0..n as u64).map(|i| (i * 37 + 11) % q).collect();
        let mut tmp = vec![0u64; n];
        let mut lhs = vec![0u64; n];
        a2.apply_coeff(&src, &mut tmp, q);
        a1.apply_coeff(&tmp, &mut lhs, q);
        let mut rhs = vec![0u64; n];
        a12.apply_coeff(&src, &mut rhs, q);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn special_fft_roundtrip(res in prop::collection::vec(-1000.0f64..1000.0, 16)) {
        let fft = SpecialFft::new(16);
        let mut vals: Vec<Complex> = res
            .iter()
            .enumerate()
            .map(|(i, &r)| Complex::new(r, (i as f64 - 8.0) * 0.5))
            .collect();
        let orig = vals.clone();
        fft.inverse(&mut vals);
        fft.forward(&mut vals);
        for (a, b) in vals.iter().zip(&orig) {
            prop_assert!((*a - *b).abs() < 1e-6 * (1.0 + b.abs()));
        }
    }
}

/// A deterministic pseudo-random flat limb-major buffer with every residue
/// reduced mod its limb modulus.
fn random_flat(seed: u64, moduli: &[u64], n: usize) -> Vec<u64> {
    let mut out = Vec::with_capacity(moduli.len() * n);
    for (i, &q) in moduli.iter().enumerate() {
        for k in 0..n as u64 {
            let x = seed
                .wrapping_mul(0x9e3779b97f4a7c15)
                .wrapping_add((i as u64) << 32)
                .wrapping_add(k)
                .wrapping_mul(0xd1342543de82ef95);
            out.push(x % q);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn full_poly_ntt_roundtrip_is_the_identity(seed in any::<u64>()) {
        let n = 64usize;
        let primes = generate_ntt_primes(4, 30, n);
        let basis = Arc::new(RnsBasis::new(&primes, n).unwrap());
        let x = RnsPoly::from_flat(
            basis,
            random_flat(seed, &primes, n),
            Representation::Coefficient,
        );
        let mut y = x.clone();
        y.to_eval();
        prop_assert_eq!(y.representation(), Representation::Evaluation);
        y.to_coeff();
        prop_assert_eq!(y.flat(), x.flat());
    }

    #[test]
    fn pmod_up_then_mod_down_is_the_identity(seed in any::<u64>()) {
        // PModUp lifts x to P·x over B ∪ B'; ModDown divides by P. The
        // composite is exact — this is the invariant the merged-ModDown
        // multiplication path (Figure 4c) rests on.
        let n = 32usize;
        let q_primes = generate_ntt_primes(3, 28, n);
        let p_primes = generate_ntt_primes_excluding(2, 29, n, &q_primes);
        let q = Arc::new(RnsBasis::new(&q_primes, n).unwrap());
        let p = RnsBasis::new(&p_primes, n).unwrap();
        let x = RnsPoly::from_flat(
            q.clone(),
            random_flat(seed, &q_primes, n),
            Representation::Evaluation,
        );
        let lifted = pmod_up(&x, &p);
        prop_assert_eq!(lifted.limb_count(), q_primes.len() + p_primes.len());
        let ctx = ModDownContext::new(q, &p);
        let back = mod_down(&lifted, &ctx);
        prop_assert_eq!(back.flat(), x.flat());
    }

    #[test]
    fn mod_up_matches_crt_reconstruction(seed in any::<u64>()) {
        // The lifted limbs produced by ModUp must carry exactly
        // [x mod p_j] for the non-negative CRT representative x — the fast
        // basis extension may not wrap by a stray multiple of Q.
        let n = 16usize;
        let q_primes = generate_ntt_primes(3, 26, n);
        let p_primes = generate_ntt_primes_excluding(2, 27, n, &q_primes);
        let q = Arc::new(RnsBasis::new(&q_primes, n).unwrap());
        let p = RnsBasis::new(&p_primes, n).unwrap();
        let ext = BasisExtender::new(&q, &p);
        let x = RnsPoly::from_flat(
            q.clone(),
            random_flat(seed, &q_primes, n),
            Representation::Coefficient,
        );
        let mut ev = x.clone();
        ev.to_eval();
        let mut raised = mod_up(&ev, &p, &ext);
        raised.to_coeff();
        let l = q_primes.len();
        for k in 0..n {
            let residues: Vec<u64> = (0..l).map(|i| x.limb(i)[k]).collect();
            let big = q.crt_reconstruct(&residues);
            for (j, &pj) in p_primes.iter().enumerate() {
                prop_assert_eq!(raised.limb(l + j)[k], big.rem_u64(pj));
            }
            // The original limbs ride along untouched.
            for i in 0..l {
                prop_assert_eq!(raised.limb(i)[k], x.limb(i)[k]);
            }
        }
    }

    #[test]
    fn automorphism_commutes_with_the_ntt(seed in any::<u64>(), k in 0usize..32) {
        // σ_k applied to coefficients, then transformed, equals transforming
        // first and applying σ_k as an evaluation-domain permutation.
        let n = 64usize;
        let k = 2 * k as u64 + 1; // any odd Galois element
        let primes = generate_ntt_primes(3, 28, n);
        let basis = Arc::new(RnsBasis::new(&primes, n).unwrap());
        let auto = Automorphism::new(k, basis.ntt_table(0));
        let x = RnsPoly::from_flat(
            basis,
            random_flat(seed, &primes, n),
            Representation::Coefficient,
        );
        let mut coeff_first = x.automorphism(&auto);
        coeff_first.to_eval();
        let mut eval_first = x.clone();
        eval_first.to_eval();
        let eval_first = eval_first.automorphism(&auto);
        prop_assert_eq!(coeff_first.flat(), eval_first.flat());
    }
}

proptest! {
    #[test]
    fn ubig_matches_u128_semantics(a in any::<u64>(), b in any::<u64>(), m in 1u64..u64::MAX) {
        let mut x = UBig::from(a);
        x.mul_small(b);
        let expect = a as u128 * b as u128;
        prop_assert_eq!(x.rem_u64(m) as u128, expect % m as u128);
        let mut y = UBig::from(expect);
        y.add_small(a);
        prop_assert_eq!(y.rem_u64(m) as u128, (expect + a as u128) % m as u128);
    }

    #[test]
    fn ubig_ordering_is_total_on_samples(a in any::<u128>(), b in any::<u128>()) {
        let (ua, ub) = (UBig::from(a), UBig::from(b));
        prop_assert_eq!(ua.cmp(&ub), a.cmp(&b));
    }

    #[test]
    fn ubig_shift_halves(a in any::<u128>(), sh in 0usize..100) {
        let x = UBig::from(a);
        prop_assert_eq!(x.shr(sh), UBig::from(a >> sh.min(127)));
    }
}
