//! Telemetry counter and span semantics: reset, bulk recording, and
//! inclusive nesting.
//!
//! The counters are process-global by design (the `parallel` feature runs
//! kernels on scoped worker threads whose counts must aggregate), so these
//! assertions live in their own integration-test binary — Cargo gives it a
//! dedicated process — and run as a single sequential test function rather
//! than racing under the threaded test runner.
#![cfg(feature = "telemetry")]

use fhe_math::prime::generate_ntt_primes;
use fhe_math::telemetry;
use fhe_math::{NttTable, ScratchPool};

#[test]
fn counter_and_span_semantics() {
    // --- reset() zeroes everything -------------------------------------
    telemetry::record_ops(3, 4);
    let _ = telemetry::span("stale");
    telemetry::reset();
    assert_eq!(telemetry::snapshot(), telemetry::Snapshot::default());
    assert!(telemetry::spans().is_empty());

    // --- bulk recording feeds the matching counters --------------------
    telemetry::record_ops(10, 20);
    telemetry::record_basis_ext(2, 3, 5);
    let snap = telemetry::snapshot();
    // record_basis_ext: per coeff, src + src·dst + dst mults and
    // src·dst + dst adds over n = 5 coefficients.
    assert_eq!(snap.mults, 10 + 5 * (2 + 6 + 3));
    assert_eq!(snap.adds, 20 + 5 * (6 + 3));
    assert_eq!(snap.ext_terms, 5 * 6);
    assert_eq!(snap.bytes_read, 8 * 2 * 5);
    assert_eq!(snap.bytes_written, 8 * 3 * 5);

    // --- NTT hooks count whole-limb transforms and butterfly ops -------
    telemetry::reset();
    let n = 16usize;
    let q = generate_ntt_primes(1, 30, n)[0];
    let table = NttTable::new(q, n).unwrap();
    let mut data: Vec<u64> = (0..n as u64).collect();
    table.forward(&mut data);
    table.inverse(&mut data);
    let b = table.butterfly_count();
    let snap = telemetry::snapshot();
    assert_eq!(snap.ntt_fwd, 1);
    assert_eq!(snap.ntt_inv, 1);
    assert_eq!(snap.transforms(), 2);
    // Forward: b mults. Inverse: b butterflies + n normalization mults.
    assert_eq!(snap.mults, 2 * b + n as u64);
    assert_eq!(snap.adds, 4 * b);

    // --- scratch leases ------------------------------------------------
    telemetry::reset();
    let pool = ScratchPool::new();
    let buf = pool.take_vec(128);
    pool.recycle_vec(buf);
    let _guard = pool.take(64);
    let snap = telemetry::snapshot();
    assert_eq!(snap.scratch_leases, 2);
    assert_eq!(snap.scratch_lease_bytes, 8 * (128 + 64));

    // --- spans: delta capture and aggregation by name ------------------
    telemetry::reset();
    {
        let _s = telemetry::span("phase");
        telemetry::record_ops(7, 0);
    }
    {
        let _s = telemetry::span("phase");
        telemetry::record_ops(5, 1);
    }
    let report = telemetry::span_report("phase").expect("span recorded");
    assert_eq!(report.calls, 2);
    assert_eq!(report.total.mults, 12);
    assert_eq!(report.total.adds, 1);
    assert!(telemetry::span_report("absent").is_none());

    // --- nesting is inclusive: inner ops count toward the outer span ---
    telemetry::reset();
    {
        let _outer = telemetry::span("outer");
        telemetry::record_ops(1, 0);
        {
            let _inner = telemetry::span("inner");
            telemetry::record_ops(2, 0);
        }
        telemetry::record_ops(4, 0);
    }
    let outer = telemetry::span_report("outer").unwrap();
    let inner = telemetry::span_report("inner").unwrap();
    assert_eq!(inner.total.mults, 2, "inner sees only its own window");
    assert_eq!(outer.total.mults, 7, "outer includes the nested span");

    // --- a reset between a span's open and close must not panic --------
    telemetry::reset();
    {
        let _s = telemetry::span("crosses-reset");
        telemetry::record_ops(9, 9);
        telemetry::reset();
    }
    let report = telemetry::span_report("crosses-reset").unwrap();
    assert_eq!(report.total.mults, 0, "delta saturates after reset");
}
