//! Property-based backend equivalence: for random NTT-friendly moduli
//! (50–61 bits — [`generate_ntt_primes`] caps prime sizes at 61 so the
//! lazy-reduction bound `4q < 2^64` always holds) and random sizes
//! `2^4..=2^12`, the scalar and unrolled backends must agree bit-for-bit,
//! and the unrolled backend's *lazy* transform entry points must keep every
//! intermediate in the half-reduced range `[0, 2q)`.

use fhe_math::backend::UnrolledBackend;
use fhe_math::poly::{Representation, RnsPoly};
use fhe_math::prime::{generate_ntt_primes, generate_ntt_primes_excluding};
use fhe_math::rns::{BasisExtender, RnsBasis};
use fhe_math::{BackendKind, KernelBackend, Modulus, NttTable};
use proptest::prelude::*;
use std::sync::Arc;

/// A random transform size `2^4..=2^12` (the ISSUE's proptest envelope).
fn size_strategy() -> impl Strategy<Value = usize> {
    (4u32..=12).prop_map(|log_n| 1usize << log_n)
}

/// A random 50–61 bit NTT prime for degree `n`: `seed` picks one of the
/// first three primes of that width so cases see different moduli.
fn ntt_prime(bits: u32, n: usize, seed: u64) -> u64 {
    *generate_ntt_primes((seed % 3) as usize + 1, bits, n)
        .last()
        .unwrap()
}

/// Deterministic residues below `q`.
fn random_residues(seed: u64, q: u64, n: usize) -> Vec<u64> {
    (0..n as u64)
        .map(|k| {
            seed.wrapping_mul(0x9e3779b97f4a7c15)
                .wrapping_add(k)
                .wrapping_mul(0xd1342543de82ef95)
                % q
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ntt_forward_and_inverse_agree_across_backends(
        bits in 50u32..=61,
        n in size_strategy(),
        seed in any::<u64>(),
    ) {
        let q = ntt_prime(bits, n, seed);
        let input = random_residues(seed, q, n);
        let scalar = NttTable::with_backend(q, n, BackendKind::Scalar.instance()).unwrap();
        let unrolled = NttTable::with_backend(q, n, BackendKind::Unrolled.instance()).unwrap();

        let mut fs = input.clone();
        scalar.forward(&mut fs);
        let mut fu = input.clone();
        unrolled.forward(&mut fu);
        prop_assert_eq!(&fs, &fu);

        let mut is_ = fs.clone();
        scalar.inverse(&mut is_);
        let mut iu = fu.clone();
        unrolled.inverse(&mut iu);
        prop_assert_eq!(&is_, &input);
        prop_assert_eq!(&iu, &input);
    }

    #[test]
    fn lazy_transforms_stay_below_2q_and_reduce_to_the_scalar_result(
        bits in 50u32..=61,
        n in size_strategy(),
        seed in any::<u64>(),
    ) {
        let q = ntt_prime(bits, n, seed);
        let input = random_residues(seed ^ 0xabcd, q, n);
        let scalar = NttTable::with_backend(q, n, BackendKind::Scalar.instance()).unwrap();
        let lazy_table = NttTable::with_backend(q, n, BackendKind::Unrolled.instance()).unwrap();

        let mut reference = input.clone();
        scalar.forward(&mut reference);

        let mut lazy = input.clone();
        UnrolledBackend.ntt_forward_lazy(&lazy_table, &mut lazy);
        for &x in &lazy {
            prop_assert!(x < 2 * q, "forward lazy value {x} >= 2q (q={q})");
        }
        let reduced: Vec<u64> = lazy.iter().map(|&x| if x >= q { x - q } else { x }).collect();
        prop_assert_eq!(&reduced, &reference);

        // Inverse: feed the canonical spectrum, check the pre-reduction
        // range, then apply the `N^{-1}` normalization the lazy entry
        // point defers and check the result round-trips.
        let mut lazy_inv = reference.clone();
        UnrolledBackend.ntt_inverse_lazy(&lazy_table, &mut lazy_inv);
        for &x in &lazy_inv {
            prop_assert!(x < 2 * q, "inverse lazy value {x} >= 2q (q={q})");
        }
        let m = Modulus::new(q).unwrap();
        let n_inv = lazy_table.n_inv();
        let normalized: Vec<u64> = lazy_inv
            .iter()
            .map(|&x| {
                let x = if x >= q { x - q } else { x };
                m.mul_shoup(x, n_inv.value, n_inv.shoup)
            })
            .collect();
        prop_assert_eq!(&normalized, &input);
    }

    #[test]
    fn pointwise_kernels_agree_across_backends(
        bits in 50u32..=61,
        n in size_strategy(),
        seed in any::<u64>(),
    ) {
        let q = ntt_prime(bits, n, seed);
        let m = Modulus::new(q).unwrap();
        let a = random_residues(seed, q, n);
        let b = random_residues(seed ^ 0x5555, q, n);
        let scalar = BackendKind::Scalar.instance();
        let unrolled = BackendKind::Unrolled.instance();

        let run = |be: &Arc<dyn KernelBackend>| {
            let mut add = a.clone();
            be.pointwise_add(&m, &mut add, &b);
            let mut mul = a.clone();
            be.pointwise_mul(&m, &mut mul, &b);
            let (mut u, mut v) = (b.clone(), a.clone());
            be.fma_pair(&m, &mul, &a, &b, &mut u, &mut v);
            (add, mul, u, v)
        };
        prop_assert_eq!(run(&scalar), run(&unrolled));
    }

    #[test]
    fn basis_extension_agrees_across_backends(
        bits in 50u32..=60,
        n in size_strategy(),
        seed in any::<u64>(),
    ) {
        let src_primes = generate_ntt_primes(2, bits, n);
        let dst_primes = generate_ntt_primes_excluding(2, bits + 1, n, &src_primes);
        let mut flat = Vec::with_capacity(2 * n);
        for (i, &q) in src_primes.iter().enumerate() {
            flat.extend(random_residues(seed ^ (i as u64), q, n));
        }
        let run = |kind: BackendKind| {
            let src = RnsBasis::with_backend(&src_primes, n, kind.instance()).unwrap();
            let dst = RnsBasis::with_backend(&dst_primes, n, kind.instance()).unwrap();
            let ext = BasisExtender::new(&src, &dst);
            let mut out = vec![0u64; dst_primes.len() * n];
            ext.extend_flat(&flat, &mut out, n);
            out
        };
        prop_assert_eq!(run(BackendKind::Scalar), run(BackendKind::Unrolled));
    }

    #[test]
    fn poly_round_trip_agrees_across_backends(
        bits in 50u32..=61,
        n in size_strategy(),
        seed in any::<u64>(),
    ) {
        let primes = generate_ntt_primes(2, bits, n);
        let mut flat = Vec::with_capacity(2 * n);
        for (i, &q) in primes.iter().enumerate() {
            flat.extend(random_residues(seed ^ (i as u64), q, n));
        }
        let run = |kind: BackendKind| {
            let basis = Arc::new(RnsBasis::with_backend(&primes, n, kind.instance()).unwrap());
            let mut p = RnsPoly::from_flat(basis, flat.clone(), Representation::Coefficient);
            p.to_eval();
            let eval = p.flat().to_vec();
            p.to_coeff();
            prop_assert_eq!(p.flat(), &flat[..]);
            Ok(eval)
        };
        prop_assert_eq!(run(BackendKind::Scalar)?, run(BackendKind::Unrolled)?);
    }
}
