//! Serial-vs-parallel bit-identity of the limb-parallel kernels.
//!
//! The parallel helpers partition work identically to the serial loop, so
//! forcing either path must produce byte-for-byte equal buffers. These
//! tests run each kernel twice inside one binary via
//! [`fhe_math::parallel::set_forced`] — the same mechanism the
//! serial-vs-parallel benches use. The force flag is process-global, so a
//! mutex serializes the tests.

#![cfg(feature = "parallel")]

use fhe_math::parallel::set_forced;
use fhe_math::poly::{mod_down, mod_up, pmod_up, ModDownContext, Representation, RnsPoly};
use fhe_math::prime::{generate_ntt_primes, generate_ntt_primes_excluding};
use fhe_math::rns::{BasisExtender, RnsBasis};
use std::sync::{Arc, Mutex, OnceLock};

fn force_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// Runs `f` with the parallel path forced off, then forced on, and returns
/// both results for comparison.
fn both_modes<T>(f: impl Fn() -> T) -> (T, T) {
    let _guard = force_lock().lock().unwrap();
    set_forced(Some(false));
    let serial = f();
    set_forced(Some(true));
    let parallel = f();
    set_forced(None);
    (serial, parallel)
}

fn random_flat(seed: u64, moduli: &[u64], n: usize) -> Vec<u64> {
    let mut out = Vec::with_capacity(moduli.len() * n);
    for (i, &q) in moduli.iter().enumerate() {
        for k in 0..n as u64 {
            let x = seed
                .wrapping_mul(0x9e3779b97f4a7c15)
                .wrapping_add((i as u64) << 32)
                .wrapping_add(k)
                .wrapping_mul(0xd1342543de82ef95);
            out.push(x % q);
        }
    }
    out
}

#[test]
fn full_poly_ntt_is_bit_identical() {
    let n = 256usize;
    let primes = generate_ntt_primes(6, 30, n);
    let basis = Arc::new(RnsBasis::new(&primes, n).unwrap());
    let flat = random_flat(7, &primes, n);
    let (serial, parallel) = both_modes(|| {
        let mut p = RnsPoly::from_flat(basis.clone(), flat.clone(), Representation::Coefficient);
        p.to_eval();
        let eval = p.flat().to_vec();
        p.to_coeff();
        (eval, p.into_flat())
    });
    assert_eq!(serial, parallel);
}

#[test]
fn mod_up_and_mod_down_are_bit_identical() {
    let n = 128usize;
    let q_primes = generate_ntt_primes(4, 28, n);
    let p_primes = generate_ntt_primes_excluding(2, 29, n, &q_primes);
    let q = Arc::new(RnsBasis::new(&q_primes, n).unwrap());
    let p = RnsBasis::new(&p_primes, n).unwrap();
    let ext = BasisExtender::new(&q, &p);
    let ctx = ModDownContext::new(q.clone(), &p);
    let flat = random_flat(11, &q_primes, n);
    let (serial, parallel) = both_modes(|| {
        let x = RnsPoly::from_flat(q.clone(), flat.clone(), Representation::Evaluation);
        let raised = mod_up(&x, &p, &ext);
        let lowered = mod_down(&raised, &ctx);
        (raised.into_flat(), lowered.into_flat())
    });
    assert_eq!(serial, parallel);
}

#[test]
fn pmod_up_is_bit_identical() {
    let n = 128usize;
    let q_primes = generate_ntt_primes(3, 28, n);
    let p_primes = generate_ntt_primes_excluding(2, 29, n, &q_primes);
    let q = Arc::new(RnsBasis::new(&q_primes, n).unwrap());
    let p = RnsBasis::new(&p_primes, n).unwrap();
    let flat = random_flat(13, &q_primes, n);
    let (serial, parallel) = both_modes(|| {
        let x = RnsPoly::from_flat(q.clone(), flat.clone(), Representation::Evaluation);
        pmod_up(&x, &p).into_flat()
    });
    assert_eq!(serial, parallel);
}
