//! Backend-invariant operation accounting.
//!
//! Counters are recorded at the dispatch sites (`NttTable::forward`,
//! `extend_flat`, the `RnsPoly` ops) in *logical* units, never inside a
//! backend, so every backend reports the same numbers for the same work —
//! the unrolled backend's blocking and lazy reduction are invisible to the
//! accounting. This regression test pins the counts for a fixed workload
//! under both backends.
//!
//! The NTT invocation counters (and the feature-gated telemetry counters)
//! are process-global, so the whole check lives in one `#[test]` — this
//! file must not grow a second test or parallel test threads would race
//! the counts.

use fhe_math::prime::{generate_ntt_primes, generate_ntt_primes_excluding};
use fhe_math::rns::{BasisExtender, RnsBasis};
use fhe_math::{ntt, BackendKind, NttTable};

const N: usize = 64;
const FORWARD_RUNS: u64 = 3;
const INVERSE_RUNS: u64 = 2;

/// One fixed workload: a few transforms plus one basis extension.
fn workload(kind: BackendKind) {
    let q = generate_ntt_primes(1, 50, N)[0];
    let table = NttTable::with_backend(q, N, kind.instance()).unwrap();
    let mut data: Vec<u64> = (0..N as u64).map(|k| k.wrapping_mul(0x9e37) % q).collect();
    for _ in 0..FORWARD_RUNS {
        table.forward(&mut data);
    }
    for _ in 0..INVERSE_RUNS {
        table.inverse(&mut data);
    }

    let src_primes = generate_ntt_primes(2, 45, N);
    let dst_primes = generate_ntt_primes_excluding(3, 46, N, &src_primes);
    let src = RnsBasis::with_backend(&src_primes, N, kind.instance()).unwrap();
    let dst = RnsBasis::with_backend(&dst_primes, N, kind.instance()).unwrap();
    let ext = BasisExtender::new(&src, &dst);
    let flat: Vec<u64> = src_primes
        .iter()
        .flat_map(|&q| (0..N as u64).map(move |k| k.wrapping_mul(0x1234_5677) % q))
        .collect();
    let mut out = vec![0u64; dst_primes.len() * N];
    ext.extend_flat(&flat, &mut out, N);
}

/// Counter deltas for one workload run.
#[derive(Debug, PartialEq, Eq)]
struct Counts {
    ntt_forward: u64,
    ntt_inverse: u64,
    #[cfg(feature = "telemetry")]
    telemetry: fhe_math::telemetry::Snapshot,
}

fn measure(kind: BackendKind) -> Counts {
    ntt::counters::reset();
    #[cfg(feature = "telemetry")]
    fhe_math::telemetry::reset();
    workload(kind);
    Counts {
        ntt_forward: ntt::counters::forward_count(),
        ntt_inverse: ntt::counters::inverse_count(),
        #[cfg(feature = "telemetry")]
        telemetry: fhe_math::telemetry::snapshot(),
    }
}

#[test]
fn op_counts_are_identical_across_backends_and_pinned() {
    let scalar = measure(BackendKind::Scalar);
    let unrolled = measure(BackendKind::Unrolled);
    assert_eq!(
        scalar, unrolled,
        "backends must record identical logical op counts"
    );

    // Pin the invocation counts: they are properties of the workload, not
    // of the backend.
    assert_eq!(scalar.ntt_forward, FORWARD_RUNS);
    assert_eq!(scalar.ntt_inverse, INVERSE_RUNS);

    #[cfg(feature = "telemetry")]
    {
        let t = &scalar.telemetry;
        assert_eq!(t.ntt_fwd, FORWARD_RUNS);
        assert_eq!(t.ntt_inv, INVERSE_RUNS);
        // Butterfly accounting: (n/2)·log2(n) mults per transform, and the
        // inverse adds an n-point `N^{-1}` scaling pass.
        let butterflies = (N as u64 / 2) * (N as u64).trailing_zeros() as u64;
        let transform_mults = (FORWARD_RUNS + INVERSE_RUNS) * butterflies + INVERSE_RUNS * N as u64;
        assert!(
            t.mults >= transform_mults,
            "expected at least {transform_mults} mults (transforms alone), got {}",
            t.mults
        );
        // NewLimb inner-product terms: src·dst per coefficient.
        assert_eq!(t.ext_terms, 2 * 3 * N as u64);
    }
}
