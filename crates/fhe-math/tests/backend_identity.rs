//! Scalar-vs-unrolled bit-identity of the kernel backends.
//!
//! The [`fhe_math::KernelBackend`] contract says every backend produces
//! fully reduced canonical residues, so running the same kernel through
//! [`BackendKind::Scalar`] and [`BackendKind::Unrolled`] must yield
//! byte-for-byte equal buffers — lazy reduction, blocking, and the fused
//! basis-extension loops are all internal representation choices. These
//! tests pin that equality for every trait method at the `fhe-math` layer;
//! the scheme-level pipelines are covered by the `backend_identity` suites
//! in `ckks` and `fhe-apps`.

use fhe_math::poly::{mod_down, mod_up, pmod_up, rescale, ModDownContext, Representation, RnsPoly};
use fhe_math::prime::{generate_ntt_primes, generate_ntt_primes_excluding};
use fhe_math::rns::{BasisExtender, RnsBasis};
use fhe_math::{BackendKind, Modulus, NttTable, ShoupPair};
use std::sync::Arc;

const KINDS: [BackendKind; 2] = [BackendKind::Scalar, BackendKind::Unrolled];

/// Deterministic pseudo-random residues for limb `i` of a flat buffer.
fn random_flat(seed: u64, moduli: &[u64], n: usize) -> Vec<u64> {
    let mut out = Vec::with_capacity(moduli.len() * n);
    for (i, &q) in moduli.iter().enumerate() {
        for k in 0..n as u64 {
            let x = seed
                .wrapping_mul(0x9e3779b97f4a7c15)
                .wrapping_add((i as u64) << 32)
                .wrapping_add(k)
                .wrapping_mul(0xd1342543de82ef95);
            out.push(x % q);
        }
    }
    out
}

/// Runs `f` once per backend kind and asserts both results are equal.
fn assert_backends_agree<T: PartialEq + std::fmt::Debug>(f: impl Fn(BackendKind) -> T) {
    let scalar = f(BackendKind::Scalar);
    let unrolled = f(BackendKind::Unrolled);
    assert_eq!(scalar, unrolled, "scalar and unrolled backends diverged");
}

#[test]
fn ntt_round_trip_is_bit_identical_across_sizes_and_moduli() {
    for log_n in [4usize, 6, 8, 10] {
        let n = 1usize << log_n;
        for bits in [30u32, 50, 61] {
            let q = generate_ntt_primes(1, bits, n)[0];
            let input = random_flat(q ^ n as u64, &[q], n);
            assert_backends_agree(|kind| {
                let table = NttTable::with_backend(q, n, kind.instance()).unwrap();
                let mut fwd = input.clone();
                table.forward(&mut fwd);
                let mut back = fwd.clone();
                table.inverse(&mut back);
                assert_eq!(back, input, "{kind:?} round trip lost data (n={n}, q={q})");
                fwd
            });
        }
    }
}

#[test]
fn pointwise_kernels_are_bit_identical() {
    let n = 257usize; // odd length exercises the blocked remainder path
    let q = generate_ntt_primes(1, 55, 256)[0];
    let m = Modulus::new(q).unwrap();
    let a = random_flat(11, &[q], n);
    let b = random_flat(22, &[q], n);
    let d = random_flat(33, &[q], n);
    let c = ShoupPair::new(&m, m.reduce(0x1234_5678_9abc_def0));

    assert_backends_agree(|kind| {
        let be = kind.instance();
        let mut add = a.clone();
        be.pointwise_add(&m, &mut add, &b);
        let mut sub = a.clone();
        be.pointwise_sub(&m, &mut sub, &b);
        let mut neg = a.clone();
        be.pointwise_neg(&m, &mut neg);
        let mut mul = a.clone();
        be.pointwise_mul(&m, &mut mul, &b);
        let mut into = vec![0u64; n];
        be.pointwise_mul_into(&m, &a, &b, &mut into);
        assert_eq!(into, mul, "{kind:?}: mul_into disagrees with in-place mul");
        let mut scaled = a.clone();
        be.scale_shoup(&m, &mut scaled, c);
        let mut combined = b.clone();
        be.sub_scale_shoup(&m, &a, &mut combined, c);
        let mut plus = a.clone();
        be.add_scalar(&m, &mut plus, q / 3);
        let mut minus = a.clone();
        be.sub_scalar(&m, &mut minus, q / 3);
        let (mut u, mut v) = (a.clone(), b.clone());
        be.fma_pair(&m, &d, &b, &a, &mut u, &mut v);
        (add, sub, neg, mul, scaled, combined, plus, minus, u, v)
    });
}

#[test]
fn basis_extension_is_bit_identical() {
    let n = 128usize;
    let src_primes = generate_ntt_primes(3, 45, n);
    let dst_primes = generate_ntt_primes_excluding(2, 46, n, &src_primes);
    let flat = random_flat(77, &src_primes, n);
    assert_backends_agree(|kind| {
        let src = RnsBasis::with_backend(&src_primes, n, kind.instance()).unwrap();
        let dst = RnsBasis::with_backend(&dst_primes, n, kind.instance()).unwrap();
        let ext = BasisExtender::new(&src, &dst);
        let mut out = vec![0u64; dst_primes.len() * n];
        ext.extend_flat(&flat, &mut out, n);
        out
    });
}

#[test]
fn mod_up_down_and_rescale_are_bit_identical() {
    let n = 64usize;
    let q_primes = generate_ntt_primes(3, 40, n);
    let p_primes = generate_ntt_primes_excluding(2, 41, n, &q_primes);
    let flat = random_flat(99, &q_primes, n);
    assert_backends_agree(|kind| {
        let q_basis = Arc::new(RnsBasis::with_backend(&q_primes, n, kind.instance()).unwrap());
        let p_basis = RnsBasis::with_backend(&p_primes, n, kind.instance()).unwrap();
        let ext = BasisExtender::new(&q_basis, &p_basis);
        let ctx = ModDownContext::new(q_basis.clone(), &p_basis);

        let poly = RnsPoly::from_flat(q_basis.clone(), flat.clone(), Representation::Evaluation);
        let raised = mod_up(&poly, &p_basis, &ext);
        let lowered = mod_down(&raised, &ctx);
        let praised = pmod_up(&poly, &p_basis);
        let rescaled = rescale(&poly);
        let mut all = raised.flat().to_vec();
        all.extend_from_slice(lowered.flat());
        all.extend_from_slice(praised.flat());
        all.extend_from_slice(rescaled.flat());
        all
    });
}

#[test]
fn full_poly_pipeline_is_bit_identical() {
    let n = 256usize;
    let primes = generate_ntt_primes(4, 50, n);
    let fa = random_flat(5, &primes, n);
    let fb = random_flat(6, &primes, n);
    assert_backends_agree(|kind| {
        let basis = Arc::new(RnsBasis::with_backend(&primes, n, kind.instance()).unwrap());
        let mut a = RnsPoly::from_flat(basis.clone(), fa.clone(), Representation::Coefficient);
        let mut b = RnsPoly::from_flat(basis.clone(), fb.clone(), Representation::Coefficient);
        a.to_eval();
        b.to_eval();
        let mut prod = RnsPoly::from_flat(basis, a.flat().to_vec(), Representation::Evaluation);
        prod.mul_assign_pointwise(&b);
        prod.add_assign(&a);
        prod.sub_assign(&b);
        prod.mul_scalar_assign(0x0123_4567_89ab_cdef);
        prod.negate();
        prod.to_coeff();
        prod.flat().to_vec()
    });
}

const KIND_NAMES: [(&str, BackendKind); 2] = [
    ("scalar", BackendKind::Scalar),
    ("unrolled", BackendKind::Unrolled),
];

#[test]
fn backend_names_round_trip_through_selection() {
    for (name, kind) in KIND_NAMES {
        assert_eq!(BackendKind::from_name(name), Some(kind));
        assert_eq!(kind.name(), name);
        assert_eq!(kind.instance().name(), name);
    }
    for kind in KINDS {
        let table = NttTable::with_backend(65537, 16, kind.instance()).unwrap();
        assert_eq!(table.backend().name(), kind.name());
    }
}
