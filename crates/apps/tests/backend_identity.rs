//! Scalar-vs-unrolled bit-identity of a full HELR training step.
//!
//! The deepest end-to-end check of the backend contract: one
//! [`encrypted_lr_step`] runs every hot kernel — encode, encrypt, the
//! rotation folds, relinearization (ModUp/ModDown), and rescale — and the
//! resulting weight ciphertexts must be byte-for-byte identical no matter
//! which [`BackendKind`] the context was built with.

use ckks::{Ciphertext, CkksContext, CkksParams, Encoder, Encryptor, Evaluator, KeyGenerator};
use fhe_apps::helr_enc::{encrypted_lr_step, lr_fold_steps};
use fhe_math::cfft::Complex;
use fhe_math::BackendKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Flattens a ciphertext to its raw words so equality is bit-equality.
fn words(ct: &Ciphertext) -> Vec<u64> {
    let mut out = ct.c0().flat().to_vec();
    out.extend_from_slice(ct.c1().flat());
    out
}

fn lr_step_words(kind: BackendKind) -> Vec<u64> {
    let ctx = CkksContext::with_backend(
        CkksParams::builder()
            .log_degree(5)
            .levels(10)
            .scale_bits(30)
            .first_modulus_bits(40)
            .special_modulus_bits(34)
            .dnum(5)
            .build()
            .unwrap(),
        Some(kind),
    );
    let slots = ctx.params().slots();
    let levels = ctx.params().levels();
    let scale = ctx.params().scale();
    let mut rng = StdRng::seed_from_u64(31);
    let keygen = KeyGenerator::new(ctx.clone());
    let sk = keygen.secret_key(&mut rng);
    let rlk = keygen.relin_key(&mut rng, &sk);
    let gk = keygen.galois_keys(&mut rng, &sk, &lr_fold_steps(slots), false);
    let encoder = Encoder::new(ctx.clone());
    let encryptor = Encryptor::new(ctx.clone());
    let ev = Evaluator::new(ctx.clone());

    let dim = 3;
    let xs_plain: Vec<Vec<f64>> = (0..dim)
        .map(|d| {
            (0..slots)
                .map(|b| ((b * 7 + d * 3) % 5) as f64 * 0.2 - 0.4)
                .collect()
        })
        .collect();
    let y01: Vec<f64> = (0..slots).map(|b| ((b % 3) == 0) as u8 as f64).collect();
    let mut encrypt_vec = |v: &[f64]| {
        let cv: Vec<Complex> = v.iter().map(|&x| Complex::new(x, 0.0)).collect();
        let pt = encoder.encode(&cv, levels, scale).unwrap();
        encryptor.encrypt_symmetric(&mut rng, &pt, &sk)
    };
    let xs: Vec<Ciphertext> = xs_plain.iter().map(|c| encrypt_vec(c)).collect();
    let y_ct = encrypt_vec(&y01);
    let mut weights: Vec<Ciphertext> = (0..dim).map(|_| encrypt_vec(&vec![0.0; slots])).collect();

    encrypted_lr_step(
        &ev,
        rlk.switching_key(),
        &gk,
        &mut weights,
        &xs,
        &y_ct,
        slots,
        1.0,
    );
    weights.iter().flat_map(words).collect()
}

#[test]
fn helr_step_is_bit_identical_across_backends() {
    let scalar = lr_step_words(BackendKind::Scalar);
    let unrolled = lr_step_words(BackendKind::Unrolled);
    assert_eq!(scalar, unrolled, "HELR step diverged between backends");
}
