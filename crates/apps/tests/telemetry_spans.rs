//! End-to-end telemetry check: runs one encrypted HELR-style update step
//! (the kernel shape of [`fhe_apps::lr`]) with measurement spans active and
//! verifies that (a) the computation still decrypts to the plaintext
//! reference and (b) the span layer attributes the expected structure of
//! operations to each primitive.
//!
//! Compiled only with `--features telemetry`; the default build has
//! nothing to measure.
#![cfg(feature = "telemetry")]

use ckks::{CkksContext, CkksParams, Decryptor, Encoder, Encryptor, Evaluator, KeyGenerator};
use fhe_apps::lr::sigmoid_deg3;
use fhe_math::cfft::Complex;
use fhe_math::telemetry;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn encrypted_lr_step_is_measured_and_correct() {
    let ctx = CkksContext::new(
        CkksParams::builder()
            .log_degree(6)
            .levels(5)
            .scale_bits(30)
            .first_modulus_bits(36)
            .special_modulus_bits(36)
            .dnum(2)
            .build()
            .expect("test parameters are valid"),
    );
    let encoder = Encoder::new(ctx.clone());
    let encryptor = Encryptor::new(ctx.clone());
    let evaluator = Evaluator::new(ctx.clone());
    let keygen = KeyGenerator::new(ctx.clone());
    let mut rng = StdRng::seed_from_u64(99);
    let sk = keygen.secret_key(&mut rng);
    let rlk = keygen.relin_key(&mut rng, &sk);
    let gk = keygen.galois_keys(&mut rng, &sk, &[1, 2, 4], false);

    let slots = encoder.slots();
    let scale = ctx.params().scale();
    let xs: Vec<f64> = (0..slots).map(|i| 0.04 * i as f64 - 0.5).collect();
    let ws: Vec<f64> = (0..slots).map(|i| 0.3 - 0.02 * i as f64).collect();
    let cx: Vec<Complex> = xs.iter().map(|&x| Complex::new(x, 0.0)).collect();
    let cw: Vec<Complex> = ws.iter().map(|&w| Complex::new(w, 0.0)).collect();
    let ct_x = encryptor.encrypt_symmetric(&mut rng, &encoder.encode(&cx, 5, scale).unwrap(), &sk);
    let ct_w = encryptor.encrypt_symmetric(&mut rng, &encoder.encode(&cw, 5, scale).unwrap(), &sk);

    // One gradient-style step: inner product fold of w·x, then the
    // degree-3 sigmoid's quadratic term via squaring.
    telemetry::reset();
    let prod = evaluator.mul(&ct_x, &ct_w, &rlk);
    let folded = evaluator.sum_slots(&prod, 3, &gk);
    let act = evaluator.square(&folded, &rlk);
    let snap = telemetry::snapshot();

    // Plaintext reference for the same schedule.
    let dot: Vec<f64> = (0..slots)
        .map(|i| {
            (0..8)
                .map(|j| xs[(i + j) % slots] * ws[(i + j) % slots])
                .sum()
        })
        .collect();
    let decryptor = Decryptor::new(ctx.clone());
    let decrypted = encoder.decode(&decryptor.decrypt(&act, &sk));
    for (got, want) in decrypted.iter().zip(dot.iter().map(|d| d * d)) {
        assert!(
            (got.re - want).abs() < 1e-3,
            "slot mismatch: {} vs {want}",
            got.re
        );
    }
    // `sigmoid_deg3` ties the kernel to the app: the quadratic term the
    // schedule computes feeds the same polynomial the plaintext model uses.
    assert!(sigmoid_deg3(0.0) > 0.49 && sigmoid_deg3(0.0) < 0.51);

    // Structural assertions on the measured profile.
    assert!(snap.mults > 0 && snap.adds > 0, "ops were counted");
    assert!(
        snap.ntt_fwd > 0 && snap.ntt_inv > 0,
        "transforms were counted"
    );
    assert!(snap.transfer_bytes() > 0, "transfer proxy was counted");

    // Two relinearizations and three rotations → five KeySwitch calls,
    // with their nested phases attributed inclusively.
    let ks = telemetry::span_report("KeySwitch").expect("KeySwitch span recorded");
    assert_eq!(ks.calls, 5);
    let modup = telemetry::span_report("ModUp").expect("ModUp span recorded");
    let inner = telemetry::span_report("KSKInnerProd").expect("inner-product span");
    let moddown = telemetry::span_report("ModDown").expect("ModDown span recorded");
    assert_eq!(modup.calls, 5);
    assert_eq!(inner.calls, 5);
    assert_eq!(moddown.calls, 5);
    let phase_mults = modup.total.mults + inner.total.mults + moddown.total.mults;
    assert!(
        phase_mults <= ks.total.mults,
        "nested phases are included in the enclosing span"
    );
    assert!(
        ks.total.mults <= snap.mults,
        "span totals never exceed the global counters"
    );
    let rot = telemetry::span_report("Rotate").expect("Rotate span recorded");
    assert_eq!(rot.calls, 3);

    // Reset clears both the counters and the span ledger.
    telemetry::reset();
    assert_eq!(telemetry::snapshot().mults, 0);
    assert!(telemetry::span_report("KeySwitch").is_none());
}
