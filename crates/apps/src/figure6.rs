//! Figure 6 of the MAD paper: HELR training time and ResNet-20 inference
//! time for each accelerator design, original vs +MAD at several on-chip
//! memory sizes.
//!
//! Substitution note (see DESIGN.md): the paper's first bar in each
//! sub-figure quotes the original papers' testbed numbers; here the
//! "original" configuration is *simulated* with the same roofline model
//! (baseline caching/algorithms at the design's published cache size), so
//! every bar comes from one consistent model. The +MAD bars follow the
//! paper: all algorithmic optimizations, caching auto-selected from the
//! cache size.

use crate::lr::{helr_workload, HelrShape};
use crate::resnet::resnet20_workload;
use simfhe::hardware::HardwareConfig;
use simfhe::opts::{AlgoOpts, CachingLevel, MadConfig};
use simfhe::params::SchemeParams;
use simfhe::primitives::CostModel;
use simfhe::workload::Workload;

/// Which Figure-6 workload to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fig6Workload {
    /// HELR logistic-regression training (Figure 6a–e).
    LrTraining,
    /// ResNet-20 inference (Figure 6f–h).
    ResNetInference,
}

/// One bar of Figure 6.
#[derive(Clone, Debug)]
pub struct Fig6Bar {
    /// Label, e.g. `"GPU+MAD-32"`.
    pub label: String,
    /// On-chip memory in MB.
    pub cache_mb: f64,
    /// Whether MAD optimizations are applied.
    pub mad: bool,
    /// Caching level actually engaged.
    pub caching: CachingLevel,
    /// Runtime in seconds.
    pub runtime_s: f64,
    /// Memory-bound on this design?
    pub memory_bound: bool,
}

fn build_workload(kind: Fig6Workload, params: &SchemeParams) -> Workload {
    match kind {
        Fig6Workload::LrTraining => helr_workload(params, HelrShape::default()),
        Fig6Workload::ResNetInference => resnet20_workload(params),
    }
}

/// Simulates one bar: the design `hw` at `cache_mb`, with or without MAD.
pub fn simulate_bar(
    base_hw: &HardwareConfig,
    cache_mb: f64,
    mad: bool,
    kind: Fig6Workload,
) -> Fig6Bar {
    // Original bars run the designs' own (baseline) parameters; +MAD bars
    // run the MAD-optimal set (§4.3: "we implement HELR … using all our
    // optimizations and the parameters in Table 5").
    let params = if mad {
        SchemeParams::mad_practical()
    } else {
        SchemeParams::baseline()
    };
    let hw = base_hw.with_cache_mb(cache_mb);
    let limb_mb = params.limb_mib();
    let caching = if mad {
        CachingLevel::best_for_cache(
            cache_mb,
            params.alpha(),
            params.beta_at(params.limbs),
            limb_mb,
        )
    } else {
        CachingLevel::Baseline
    };
    let algo = if mad {
        AlgoOpts::all()
    } else {
        AlgoOpts {
            modup_hoist: true,
            ..AlgoOpts::none()
        }
    };
    let model = CostModel::new(params, MadConfig { caching, algo });
    let w = build_workload(kind, &params);
    let cost = model.workload_cost(&w);
    Fig6Bar {
        label: if mad {
            format!("{}+MAD-{}", base_hw.name, cache_mb as u64)
        } else {
            format!("{}-{}", base_hw.name, cache_mb as u64)
        },
        cache_mb,
        mad,
        caching,
        runtime_s: hw.runtime_seconds(&cost),
        memory_bound: hw.is_memory_bound(&cost),
    }
}

/// The bar group for one design, mirroring the paper's sub-figures:
/// the original configuration at its published cache, then +MAD at each
/// requested cache size.
pub fn design_bars(hw: &HardwareConfig, mad_caches_mb: &[f64], kind: Fig6Workload) -> Vec<Fig6Bar> {
    let mut bars = vec![simulate_bar(hw, hw.on_chip_mb, false, kind)];
    for &mb in mad_caches_mb {
        bars.push(simulate_bar(hw, mb, true, kind));
    }
    bars
}

/// The full Figure-6 layout: per design, the cache sizes the paper plots.
pub fn figure6_groups(kind: Fig6Workload) -> Vec<(HardwareConfig, Vec<Fig6Bar>)> {
    let layout: [(HardwareConfig, &[f64]); 5] = [
        (HardwareConfig::gpu(), &[6.0, 32.0]),
        (HardwareConfig::f1(), &[32.0, 64.0]),
        (HardwareConfig::craterlake(), &[32.0, 256.0]),
        (HardwareConfig::bts(), &[32.0, 256.0, 512.0]),
        (HardwareConfig::ark(), &[32.0, 256.0, 512.0]),
    ];
    layout
        .into_iter()
        .map(|(hw, caches)| {
            let bars = design_bars(&hw, caches, kind);
            (hw, bars)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_mad_improves_lr_training() {
        // Figure 6a: GPU+MAD-6 ≈ 3.5× and GPU+MAD-32 ≈ 17× faster.
        let gpu = HardwareConfig::gpu();
        let bars = design_bars(&gpu, &[6.0, 32.0], Fig6Workload::LrTraining);
        let orig = bars[0].runtime_s;
        let mad6 = bars[1].runtime_s;
        let mad32 = bars[2].runtime_s;
        let s6 = orig / mad6;
        let s32 = orig / mad32;
        assert!(s6 > 1.5, "GPU+MAD-6 speedup {s6:.2} (paper: 3.5×)");
        assert!(s32 > s6, "more cache must help");
        assert!(s32 > 3.0, "GPU+MAD-32 speedup {s32:.2} (paper: 17×)");
    }

    #[test]
    fn mad_32_matches_larger_caches_once_compute_bound() {
        // Figures 6c/6d: once MAD makes a design compute-bound, growing the
        // cache beyond 32 MB brings little.
        let bts = HardwareConfig::bts();
        let b32 = simulate_bar(&bts, 32.0, true, Fig6Workload::ResNetInference);
        let b512 = simulate_bar(&bts, 512.0, true, Fig6Workload::ResNetInference);
        let ratio = b32.runtime_s / b512.runtime_s;
        assert!(
            ratio < 1.6,
            "32 MB vs 512 MB should be close under MAD (ratio {ratio:.2})"
        );
    }

    #[test]
    fn resnet_runtime_exceeds_lr_iteration_scale() {
        // ResNet-20 has ~19 bootstraps vs HELR's 9 — on the same design it
        // should cost more.
        let gpu = HardwareConfig::gpu();
        let lr = simulate_bar(&gpu, 32.0, true, Fig6Workload::LrTraining);
        let rn = simulate_bar(&gpu, 32.0, true, Fig6Workload::ResNetInference);
        assert!(rn.runtime_s > lr.runtime_s * 0.5);
    }

    #[test]
    fn figure6_layout_shape() {
        let groups = figure6_groups(Fig6Workload::LrTraining);
        assert_eq!(groups.len(), 5);
        assert_eq!(groups[0].1.len(), 3); // GPU: original + 2 MAD bars
        assert_eq!(groups[3].1.len(), 4); // BTS: original + 3 MAD bars
        for (_, bars) in &groups {
            assert!(!bars[0].mad);
            assert!(bars[1..].iter().all(|b| b.mad));
        }
    }
}
