#![warn(missing_docs)]

//! FHE application workloads for the MAD reproduction: HELR
//! logistic-regression training and ResNet-20 CKKS inference, with
//! plaintext reference implementations, synthetic datasets of the paper's
//! shapes, and the simulator schedules behind Figure 6.

pub mod datasets;
pub mod figure6;
pub mod helr_enc;
pub mod lr;
pub mod resnet;

pub use datasets::{synthetic_cifar_like, synthetic_mnist_like, BinaryDataset, Image};
pub use figure6::{design_bars, figure6_groups, Fig6Bar, Fig6Workload};
pub use helr_enc::{encrypted_lr_step, helr_step_program, lr_fold_steps, plain_lr_step};
pub use lr::{helr_workload, HelrShape, PlainLr};
pub use resnet::{resnet20_layers, resnet20_workload, ConvLayer, PlainConv};
