//! HELR logistic-regression training (Han et al., AAAI'19), as evaluated
//! by the MAD paper (Figure 6a–e).
//!
//! Two artifacts live here:
//!
//! - [`PlainLr`], a plaintext reference implementation using HELR's
//!   degree-3 sigmoid approximation — the ground truth the encrypted
//!   example is validated against, and evidence that the synthetic data is
//!   learnable.
//! - [`helr_workload`], the simulator schedule: per iteration, the
//!   slot-packed matrix–vector products, the polynomial sigmoid, and the
//!   gradient update; a bootstrap every `iters_per_bootstrap` iterations
//!   (3 at the paper's parameters).

use crate::datasets::BinaryDataset;
use simfhe::bootstrap::EVAL_MOD_DEPTH;
use simfhe::params::SchemeParams;
use simfhe::workload::{Workload, WorkloadOp};

/// HELR-style degree-3 least-squares approximation of the sigmoid on
/// `[-4, 4]`: `σ(x) ≈ 0.5 + 0.197x − 0.004x³`.
pub fn sigmoid_deg3(x: f64) -> f64 {
    0.5 + 0.197 * x - 0.004 * x * x * x
}

/// Plaintext logistic-regression trainer using the HELR update rule
/// (full-batch gradient descent with the polynomial sigmoid).
#[derive(Clone, Debug)]
pub struct PlainLr {
    /// Current weights (including no bias term, as in HELR's packing).
    pub weights: Vec<f64>,
    /// Learning rate.
    pub learning_rate: f64,
}

impl PlainLr {
    /// Zero-initialized model of the given dimension.
    pub fn new(dim: usize, learning_rate: f64) -> Self {
        Self {
            weights: vec![0.0; dim],
            learning_rate,
        }
    }

    /// One full-batch gradient step; returns the mean squared gradient
    /// magnitude (a convergence diagnostic).
    pub fn step(&mut self, data: &BinaryDataset) -> f64 {
        let n = data.len() as f64;
        let dim = self.weights.len();
        let mut grad = vec![0.0f64; dim];
        for (x, &y) in data.features.iter().zip(&data.labels) {
            let z: f64 = x.iter().zip(&self.weights).map(|(a, b)| a * b).sum();
            // HELR minimizes Σ log(1 + e^{-y·z}); with the polynomial
            // sigmoid the per-sample gradient is −σ(−y·z)·y·x.
            let s = sigmoid_deg3(-y * z);
            for (g, &xi) in grad.iter_mut().zip(x) {
                *g -= s * y * xi / n;
            }
        }
        for (w, g) in self.weights.iter_mut().zip(&grad) {
            *w -= self.learning_rate * g;
        }
        grad.iter().map(|g| g * g).sum::<f64>() / dim as f64
    }

    /// Runs `iterations` full-batch steps, returning the gradient-norm
    /// trajectory (a simple convergence curve).
    pub fn train(&mut self, data: &BinaryDataset, iterations: usize) -> Vec<f64> {
        (0..iterations).map(|_| self.step(data)).collect()
    }

    /// Classification accuracy on a dataset.
    pub fn accuracy(&self, data: &BinaryDataset) -> f64 {
        let correct = data
            .features
            .iter()
            .zip(&data.labels)
            .filter(|(x, &y)| {
                let z: f64 = x.iter().zip(&self.weights).map(|(a, b)| a * b).sum();
                (z >= 0.0) == (y > 0.0)
            })
            .count();
        correct as f64 / data.len() as f64
    }
}

/// Shape of the HELR encrypted-training schedule.
#[derive(Clone, Copy, Debug)]
pub struct HelrShape {
    /// Training iterations.
    pub iterations: usize,
    /// Feature count (196 for the paper's MNIST-like task).
    pub features: usize,
    /// Batch size (1024).
    pub batch: usize,
}

impl Default for HelrShape {
    fn default() -> Self {
        Self {
            iterations: 30,
            features: 196,
            batch: 1024,
        }
    }
}

/// Multiplicative depth of one HELR iteration: `X·w` (1), degree-3 sigmoid
/// (2), gradient re-aggregation (1).
pub const HELR_ITERATION_DEPTH: usize = 4;

/// Builds the simulator workload for HELR training at the given
/// parameters. The bootstrap cadence is derived from the post-bootstrap
/// level budget — 3 iterations at both the baseline and MAD-optimal
/// parameter sets, matching §4.3.
pub fn helr_workload(params: &SchemeParams, shape: HelrShape) -> Workload {
    let consumed = 2 * params.fft_iter + 2 + EVAL_MOD_DEPTH;
    assert!(
        params.limbs > consumed + HELR_ITERATION_DEPTH,
        "parameters too shallow for HELR"
    );
    let budget = params.limbs - consumed;
    let iters_per_bootstrap = (budget.saturating_sub(1) / HELR_ITERATION_DEPTH).clamp(1, 3);

    // Rotations per slot-packed inner product: log2 of the replicated
    // feature block (Halevi–Shoup style fold).
    let fold_rots = (shape.features.next_power_of_two().trailing_zeros()) as u64;

    let mut w = Workload::new(format!(
        "HELR {}x{} ({} iters, bootstrap every {})",
        shape.batch, shape.features, shape.iterations, iters_per_bootstrap
    ));
    let mut ell = budget;
    for it in 0..shape.iterations {
        if it > 0 && it % iters_per_bootstrap == 0 {
            w.push(
                WorkloadOp::Bootstrap {
                    from_limbs: ell.clamp(2, 3),
                },
                1,
            );
            ell = budget;
        }
        assert!(ell > HELR_ITERATION_DEPTH, "level budget exhausted");
        // z = X·w: replicate weights, multiply, fold-rotate-add.
        w.push(WorkloadOp::Mult { ell }, 1);
        w.push(WorkloadOp::Rotate { ell: ell - 1 }, fold_rots);
        w.push(WorkloadOp::Add { ell: ell - 1 }, fold_rots);
        // Degree-3 sigmoid: two Mult levels plus scalar terms.
        w.push(WorkloadOp::Mult { ell: ell - 1 }, 1);
        w.push(WorkloadOp::Mult { ell: ell - 2 }, 1);
        w.push(WorkloadOp::PtAdd { ell: ell - 3 }, 1);
        // Gradient: X^T · σ — transpose fold plus masking PtMult.
        w.push(WorkloadOp::Rotate { ell: ell - 3 }, fold_rots);
        w.push(WorkloadOp::Add { ell: ell - 3 }, fold_rots);
        w.push(WorkloadOp::PtMult { ell: ell - 3 }, 1);
        // Weight update.
        w.push(WorkloadOp::Add { ell: ell - 4 }, 1);
        ell -= HELR_ITERATION_DEPTH;
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::synthetic_mnist_like;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use simfhe::opts::MadConfig;
    use simfhe::primitives::CostModel;

    #[test]
    fn sigmoid_approximation_is_close_on_core_range() {
        for i in -40..=40 {
            let x = i as f64 / 10.0;
            let exact = 1.0 / (1.0 + (-x).exp());
            assert!(
                (sigmoid_deg3(x) - exact).abs() < 0.08,
                "x={x}: {} vs {exact}",
                sigmoid_deg3(x)
            );
        }
    }

    #[test]
    fn plaintext_lr_learns_synthetic_task() {
        let mut rng = StdRng::seed_from_u64(42);
        let data = synthetic_mnist_like(&mut rng, 512, 32);
        let mut model = PlainLr::new(32, 1.0);
        let initial = model.accuracy(&data);
        for _ in 0..30 {
            model.step(&data);
        }
        let trained = model.accuracy(&data);
        assert!(
            trained > 0.85 && trained > initial,
            "accuracy {initial} -> {trained}"
        );
    }

    #[test]
    fn workload_bootstrap_cadence_matches_paper() {
        // §4.3: "with our optimal parameter set we need to perform
        // bootstrapping after every three training iterations".
        let w = helr_workload(&SchemeParams::mad_optimal(), HelrShape::default());
        // 30 iterations, bootstrap before iterations 3,6,…,27 → 9.
        assert_eq!(w.bootstrap_count(), 9);
        let w2 = helr_workload(&SchemeParams::baseline(), HelrShape::default());
        assert_eq!(w2.bootstrap_count(), 9);
    }

    #[test]
    fn workload_cost_is_bootstrap_dominated() {
        // The paper: bootstrapping consumes ~80% of ML application time.
        let params = SchemeParams::baseline();
        let model = CostModel::new(params, MadConfig::baseline());
        let w = helr_workload(&params, HelrShape::default());
        let total = model.workload_cost(&w);
        let boots = model.bootstrap_from(2).cost * w.bootstrap_count();
        let frac = boots.dram_total() as f64 / total.dram_total() as f64;
        assert!(frac > 0.6, "bootstrap fraction {frac}");
    }

    #[test]
    #[should_panic(expected = "too shallow")]
    fn shallow_params_rejected() {
        let p = SchemeParams {
            limbs: 16,
            ..SchemeParams::baseline()
        };
        let _ = helr_workload(&p, HelrShape::default());
    }
}
#[cfg(test)]
mod train_tests {
    use super::*;
    use crate::datasets::synthetic_mnist_like;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gradient_norm_decays_over_training() {
        let mut rng = StdRng::seed_from_u64(99);
        let data = synthetic_mnist_like(&mut rng, 256, 16);
        let mut model = PlainLr::new(16, 1.0);
        let curve = model.train(&data, 25);
        assert_eq!(curve.len(), 25);
        let early: f64 = curve[..5].iter().sum();
        let late: f64 = curve[20..].iter().sum();
        assert!(
            late < early,
            "gradient norm should decay: {early} -> {late}"
        );
    }
}
