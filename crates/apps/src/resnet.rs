//! ResNet-20 CKKS inference (Lee et al., IEEE Access '22), as evaluated by
//! the MAD paper (Figure 6f–h).
//!
//! Lee et al. evaluate each 3×3 convolution as a packed plaintext
//! matrix–vector product over rotated copies of the feature map, replace
//! ReLU with a composite minimax polynomial (depth ≈ 10), and bootstrap
//! once per layer to replenish levels. [`resnet20_workload`] reproduces
//! that schedule shape; [`PlainConv`] is a plaintext reference of the
//! convolution used to sanity-check the layer geometry.

use crate::datasets::Image;
use simfhe::bootstrap::EVAL_MOD_DEPTH;
use simfhe::params::SchemeParams;
use simfhe::workload::{Workload, WorkloadOp};

/// One convolutional layer's geometry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConvLayer {
    /// Input channels.
    pub in_channels: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Spatial size (square feature maps).
    pub spatial: usize,
    /// Stride (2 at stage boundaries).
    pub stride: usize,
}

impl ConvLayer {
    /// Rotations needed for the packed 3×3 convolution: nine spatial taps
    /// times the channel-fold factor (Lee et al.'s multiplexed packing).
    pub fn rotation_count(&self) -> usize {
        9 * self.in_channels.div_ceil(16).max(1)
    }
}

/// The ResNet-20 layer stack for CIFAR-10: 3 stages of 6 convolutions at
/// 16/32/64 channels plus the stem, ignoring the final pooling/FC (noise-
/// level cost).
pub fn resnet20_layers() -> Vec<ConvLayer> {
    let mut layers = vec![ConvLayer {
        in_channels: 3,
        out_channels: 16,
        spatial: 32,
        stride: 1,
    }];
    let stages: [(usize, usize, usize); 3] = [(16, 32, 1), (32, 16, 2), (64, 8, 2)];
    for (stage, &(ch, spatial, first_stride)) in stages.iter().enumerate() {
        for i in 0..6 {
            let first = i == 0 && stage > 0;
            layers.push(ConvLayer {
                in_channels: if first { ch / 2 } else { ch },
                out_channels: ch,
                spatial,
                stride: if first { first_stride } else { 1 },
            });
        }
    }
    layers
}

/// Multiplicative depth of the composite-minimax ReLU used by Lee et al.
pub const RELU_DEPTH: usize = 10;

/// `Mult` count of the composite-minimax ReLU evaluation.
pub const RELU_MULTS: usize = 15;

/// Builds the simulator workload for one ResNet-20 inference.
///
/// Each layer: one packed convolution (`MatVec`), the polynomial ReLU, and
/// a bootstrap to replenish the consumed levels (Lee et al. bootstrap every
/// layer; the MAD paper adopts the same structure).
pub fn resnet20_workload(params: &SchemeParams) -> Workload {
    let consumed = 2 * params.fft_iter + 2 + EVAL_MOD_DEPTH;
    assert!(
        params.limbs > consumed,
        "parameters too shallow for ResNet-20"
    );
    let budget = params.limbs - consumed;
    let layers = resnet20_layers();
    let mut w = Workload::new(format!(
        "ResNet-20 inference ({} conv layers)",
        layers.len()
    ));

    for layer in &layers {
        let ell = budget;
        // Convolution as a hoistable matrix–vector product.
        w.push(
            WorkloadOp::MatVec {
                ell,
                diagonals: layer.rotation_count(),
            },
            1,
        );
        // Residual add and packing fixups.
        w.push(WorkloadOp::Add { ell: ell - 1 }, 2);
        // Composite-minimax ReLU: RELU_MULTS Mults over RELU_DEPTH levels.
        let mut e = ell - 1;
        let per_level = RELU_MULTS.div_ceil(RELU_DEPTH);
        let mut remaining = RELU_MULTS;
        while remaining > 0 && e > 1 {
            let m = per_level.min(remaining);
            w.push(WorkloadOp::Mult { ell: e }, m as u64);
            remaining -= m;
            e -= 1;
        }
        // Bootstrap back to the working level.
        w.push(WorkloadOp::Bootstrap { from_limbs: 2 }, 1);
    }
    w
}

/// Plaintext 3×3 convolution reference (stride-aware, zero padding).
#[derive(Clone, Debug)]
pub struct PlainConv {
    /// Layer geometry.
    pub layer: ConvLayer,
    /// Weights `[out][in][3][3]`, flattened.
    pub weights: Vec<f64>,
}

impl PlainConv {
    /// A deterministic test-pattern convolution for the layer.
    pub fn test_pattern(layer: ConvLayer) -> Self {
        let count = layer.out_channels * layer.in_channels * 9;
        let weights = (0..count).map(|i| ((i % 7) as f64 - 3.0) / 10.0).collect();
        Self { layer, weights }
    }

    fn weight(&self, o: usize, i: usize, ky: usize, kx: usize) -> f64 {
        self.weights[((o * self.layer.in_channels + i) * 3 + ky) * 3 + kx]
    }

    /// Applies the convolution to an image.
    ///
    /// # Panics
    ///
    /// Panics if the image does not match the layer geometry.
    pub fn apply(&self, img: &Image) -> Image {
        let l = &self.layer;
        assert_eq!(img.channels, l.in_channels, "channel mismatch");
        // `spatial` is the output size; the input is `stride` times larger.
        assert_eq!(img.height, l.spatial * l.stride, "spatial mismatch");
        assert_eq!(img.width, l.spatial * l.stride, "spatial mismatch");
        let out_h = img.height / l.stride;
        let out_w = img.width / l.stride;
        let mut out = Image {
            channels: l.out_channels,
            height: out_h,
            width: out_w,
            pixels: vec![0.0; l.out_channels * out_h * out_w],
        };
        for o in 0..l.out_channels {
            for y in 0..out_h {
                for x in 0..out_w {
                    let mut acc = 0.0;
                    for i in 0..l.in_channels {
                        for ky in 0..3 {
                            for kx in 0..3 {
                                let sy = (y * l.stride + ky) as isize - 1;
                                let sx = (x * l.stride + kx) as isize - 1;
                                if sy < 0
                                    || sx < 0
                                    || sy >= img.height as isize
                                    || sx >= img.width as isize
                                {
                                    continue;
                                }
                                acc +=
                                    self.weight(o, i, ky, kx) * img.at(i, sy as usize, sx as usize);
                            }
                        }
                    }
                    out.pixels[(o * out_h + y) * out_w + x] = acc;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::synthetic_cifar_like;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn layer_stack_is_resnet20_shaped() {
        let layers = resnet20_layers();
        assert_eq!(layers.len(), 19); // stem + 18 residual convs
        assert_eq!(layers[0].in_channels, 3);
        assert_eq!(layers.last().unwrap().out_channels, 64);
        // Channel counts double at stage boundaries while spatial halves.
        assert_eq!(layers[7].in_channels, 16);
        assert_eq!(layers[7].out_channels, 32);
        assert_eq!(layers[7].stride, 2);
    }

    #[test]
    fn rotation_counts_scale_with_channels() {
        let small = ConvLayer {
            in_channels: 16,
            out_channels: 16,
            spatial: 32,
            stride: 1,
        };
        let big = ConvLayer {
            in_channels: 64,
            out_channels: 64,
            spatial: 8,
            stride: 1,
        };
        assert!(big.rotation_count() > small.rotation_count());
        assert_eq!(small.rotation_count(), 9);
        assert_eq!(big.rotation_count(), 36);
    }

    #[test]
    fn workload_bootstraps_once_per_layer() {
        let w = resnet20_workload(&SchemeParams::mad_optimal());
        assert_eq!(w.bootstrap_count(), 19);
    }

    #[test]
    fn resnet_cost_is_bootstrap_dominated() {
        use simfhe::opts::MadConfig;
        use simfhe::primitives::CostModel;
        let params = SchemeParams::mad_practical();
        let model = CostModel::new(params, MadConfig::all());
        let w = resnet20_workload(&params);
        let breakdown = model.workload_breakdown(&w);
        let total = model.workload_cost(&w).dram_total() as f64;
        let boot = breakdown
            .iter()
            .find(|(k, _)| *k == "Bootstrap")
            .map(|&(_, c)| c.dram_total() as f64)
            .unwrap_or(0.0);
        assert!(
            boot / total > 0.5,
            "bootstrapping should dominate ResNet-20 DRAM traffic ({:.0}%)",
            100.0 * boot / total
        );
    }

    #[test]
    fn plain_conv_identity_kernel() {
        // A kernel that is 1 at the center of channel 0 and 0 elsewhere
        // reproduces channel 0.
        let layer = ConvLayer {
            in_channels: 2,
            out_channels: 1,
            spatial: 8,
            stride: 1,
        };
        let mut conv = PlainConv::test_pattern(layer);
        conv.weights.iter_mut().for_each(|w| *w = 0.0);
        // center tap (ky = kx = 1) of in-channel 0.
        conv.weights[4] = 1.0; // index (o=0, i=0, ky=1, kx=1)
        let mut rng = StdRng::seed_from_u64(5);
        let img = synthetic_cifar_like(&mut rng, 2, 8, 8);
        let out = conv.apply(&img);
        for y in 0..8 {
            for x in 0..8 {
                assert!((out.at(0, y, x) - img.at(0, y, x)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn strided_conv_halves_spatial() {
        let layer = ConvLayer {
            in_channels: 1,
            out_channels: 1,
            spatial: 8,
            stride: 2,
        };
        let conv = PlainConv::test_pattern(layer);
        let mut rng = StdRng::seed_from_u64(6);
        let img = synthetic_cifar_like(&mut rng, 1, 16, 16);
        let out = conv.apply(&img);
        assert_eq!(out.height, 8);
        assert_eq!(out.width, 8);
    }
}
