//! Synthetic datasets shaped like the paper's workloads.
//!
//! The paper trains HELR on an MNIST-like binary task (1024 samples × 196
//! features after downsampling) and runs ResNet-20 inference on CIFAR-10
//! images (32 × 32 × 3). Neither dataset ships with this repository; these
//! generators produce data of identical shape and dynamic range, which is
//! all that matters for FHE cost (ciphertext computation is
//! data-independent) and enough for the functional examples to show
//! learning actually happens.

use rand::Rng;

/// A binary-classification dataset: features in `[-1, 1]`, labels `±1`.
#[derive(Clone, Debug)]
pub struct BinaryDataset {
    /// Row-major feature matrix, `samples × features`.
    pub features: Vec<Vec<f64>>,
    /// Labels in `{-1.0, +1.0}`.
    pub labels: Vec<f64>,
}

impl BinaryDataset {
    /// Sample count.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.features.first().map_or(0, Vec::len)
    }
}

/// Generates a linearly separable (with margin noise) binary task of the
/// HELR shape: `samples × features`, labels from a random ground-truth
/// hyperplane plus label noise.
pub fn synthetic_mnist_like<R: Rng + ?Sized>(
    rng: &mut R,
    samples: usize,
    features: usize,
) -> BinaryDataset {
    let truth: Vec<f64> = (0..features).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let mut data = BinaryDataset {
        features: Vec::with_capacity(samples),
        labels: Vec::with_capacity(samples),
    };
    for _ in 0..samples {
        let x: Vec<f64> = (0..features).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let score: f64 = x.iter().zip(&truth).map(|(a, b)| a * b).sum();
        let noisy = score + rng.gen_range(-0.5..0.5);
        data.labels.push(if noisy >= 0.0 { 1.0 } else { -1.0 });
        data.features.push(x);
    }
    data
}

/// A CIFAR-shaped image: `channels × height × width`, values in `[0, 1]`.
#[derive(Clone, Debug)]
pub struct Image {
    /// Channel count (3 for CIFAR).
    pub channels: usize,
    /// Spatial height.
    pub height: usize,
    /// Spatial width.
    pub width: usize,
    /// Channel-major pixel data.
    pub pixels: Vec<f64>,
}

impl Image {
    /// Pixel at `(c, y, x)`.
    pub fn at(&self, c: usize, y: usize, x: usize) -> f64 {
        self.pixels[(c * self.height + y) * self.width + x]
    }
}

/// Generates a CIFAR-10-shaped random image (3 × 32 × 32 by default use).
pub fn synthetic_cifar_like<R: Rng + ?Sized>(
    rng: &mut R,
    channels: usize,
    height: usize,
    width: usize,
) -> Image {
    Image {
        channels,
        height,
        width,
        pixels: (0..channels * height * width)
            .map(|_| rng.gen_range(0.0..1.0))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mnist_like_shape_and_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = synthetic_mnist_like(&mut rng, 256, 196);
        assert_eq!(d.len(), 256);
        assert_eq!(d.dim(), 196);
        assert!(!d.is_empty());
        assert!(d.labels.iter().all(|&l| l == 1.0 || l == -1.0));
        assert!(d
            .features
            .iter()
            .flatten()
            .all(|&x| (-1.0..=1.0).contains(&x)));
        // Both classes occur.
        let pos = d.labels.iter().filter(|&&l| l > 0.0).count();
        assert!(pos > 32 && pos < 224);
    }

    #[test]
    fn mostly_separable_by_construction() {
        // A dataset generated from a hyperplane should be learnable: check
        // the generating process is not pure noise by verifying label
        // balance correlates with the score sign (already enforced) and
        // that two draws differ.
        let mut rng = StdRng::seed_from_u64(2);
        let a = synthetic_mnist_like(&mut rng, 64, 16);
        let b = synthetic_mnist_like(&mut rng, 64, 16);
        assert_ne!(a.features[0], b.features[0]);
    }

    #[test]
    fn cifar_like_shape() {
        let mut rng = StdRng::seed_from_u64(3);
        let img = synthetic_cifar_like(&mut rng, 3, 32, 32);
        assert_eq!(img.pixels.len(), 3 * 32 * 32);
        assert!((0.0..=1.0).contains(&img.at(2, 31, 31)));
    }
}
