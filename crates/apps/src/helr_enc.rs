//! One encrypted HELR gradient-descent step on packed ciphertexts.
//!
//! This is the functional core of the paper's HELR workload (Figure 6a–e),
//! factored out of the `encrypted_logistic_regression` example so the
//! serving runtime can execute a training step as a server-side job: the
//! server holds encrypted features, labels and weights, and every gradient
//! step happens under encryption using the session's relinearization and
//! rotation keys.
//!
//! The layout follows HELR's packing: `xs[d]` holds feature `d` for every
//! sample in the batch (one sample per slot), `y01` holds the 0/1 labels,
//! and each weight is a replicated scalar in its own ciphertext.

use ckks::{Ciphertext, Evaluator, GaloisKeys, SwitchingKey};
use simfhe::program::{CtDecl, Instr, Program};

/// Constant term of the HELR degree-3 sigmoid `σ(x) ≈ C0 + C1·x + C3·x³`.
pub const SIGMOID_C0: f64 = 0.5;
/// Linear coefficient of the HELR degree-3 sigmoid.
pub const SIGMOID_C1: f64 = 0.197;
/// Cubic coefficient of the HELR degree-3 sigmoid.
pub const SIGMOID_C3: f64 = -0.004;

/// Multiplicative depth consumed by one [`encrypted_lr_step`]: the inner
/// product (1), the sigmoid cube (2), its coefficient rescale (1), the
/// gradient product (1), the batch-mean rescale (1), and the learning-rate
/// rescale (1) — callers must budget at least this many spare limbs, plus
/// one, per step.
pub const LR_STEP_DEPTH: usize = 7;

/// The rotation steps [`encrypted_lr_step`] needs Galois keys for: the
/// power-of-two fold `1, 2, 4, …, slots/2` used by the batch mean.
pub fn lr_fold_steps(slots: usize) -> Vec<i64> {
    (0..)
        .map(|i| 1i64 << i)
        .take_while(|&s| (s as usize) < slots)
        .collect()
}

/// Mean over all `slots` slots via a rotate-and-add fold; the mean ends up
/// replicated in every slot.
///
/// # Panics
///
/// Panics if a required power-of-two Galois key is missing.
pub fn slot_mean(ev: &Evaluator, gk: &GaloisKeys, ct: &Ciphertext, slots: usize) -> Ciphertext {
    let scale = ev.context().params().scale();
    let mut acc = ct.clone();
    let mut step = 1i64;
    while (step as usize) < slots {
        let rotated = ev.rotate(&acc, step, gk);
        acc = ev.add(&acc, &rotated);
        step *= 2;
    }
    ev.rescale(&ev.mul_scalar_no_rescale(&acc, 1.0 / slots as f64, scale))
}

/// One encrypted gradient-descent step of HELR logistic regression,
/// updating `weights` in place.
///
/// `rlk` is the raw `s² → s` switching key (a serving runtime's cache
/// hands these out without the `RelinKey` wrapper); `gk` must contain the
/// power-of-two rotation keys from [`lr_fold_steps`].
///
/// # Panics
///
/// Panics if `weights` and `xs` disagree in length, are empty, or a
/// required Galois key is missing.
#[allow(clippy::too_many_arguments)] // mirrors the HELR step's natural signature
pub fn encrypted_lr_step(
    ev: &Evaluator,
    rlk: &SwitchingKey,
    gk: &GaloisKeys,
    weights: &mut [Ciphertext],
    xs: &[Ciphertext],
    y01: &Ciphertext,
    slots: usize,
    learning_rate: f64,
) {
    assert_eq!(weights.len(), xs.len(), "one feature column per weight");
    assert!(!weights.is_empty(), "at least one feature");
    let scale = ev.context().params().scale();
    // z = Σ_d w_d ⊙ x_d
    let mut z: Option<Ciphertext> = None;
    for (w, x) in weights.iter().zip(xs) {
        let (wa, xa) = ev.align_levels(w, x);
        let term = ev.mul_with_key(&wa, &xa, rlk);
        z = Some(match z {
            None => term,
            Some(a) => ev.add(&a, &term),
        });
    }
    let z = z.expect("at least one feature");
    // s = σ(z) = C0 + C1·z + C3·z³
    let z2 = ev.mul_with_key(&z, &z, rlk);
    let (z2a, za) = ev.align_levels(&z2, &z);
    let z3 = ev.mul_with_key(&z2a, &za, rlk);
    let c1z = ev.rescale(&ev.mul_scalar_no_rescale(&z, SIGMOID_C1, scale));
    let c3z3 = ev.rescale(&ev.mul_scalar_no_rescale(&z3, SIGMOID_C3, scale));
    let (a, b) = ev.align_levels(&c1z, &c3z3);
    let s = ev.add_scalar(&ev.add(&a, &b), SIGMOID_C0);
    // r = s − y
    let (sa, ya) = ev.align_levels(&s, y01);
    let r = ev.sub(&sa, &ya);
    // Per-feature gradient and update.
    for (w, x) in weights.iter_mut().zip(xs) {
        let (ra, xa) = ev.align_levels(&r, x);
        let g = ev.mul_with_key(&ra, &xa, rlk);
        let g_mean = slot_mean(ev, gk, &g, slots);
        let update = ev.rescale(&ev.mul_scalar_no_rescale(&g_mean, learning_rate, scale));
        let (wa, ua) = ev.align_levels(w, &update);
        *w = ev.sub(&wa, &ua);
    }
}

/// [`encrypted_lr_step`] expressed as an encrypted-program IR
/// [`Program`]: inputs `w0..w{dim}`, `x0..x{dim}`, `y` (all at `level`
/// limbs), outputs the updated weights `wout0..wout{dim}`.
///
/// The instruction stream is the *same* evaluator-call sequence as the
/// hard-coded step (the step's explicit `align_levels` calls are
/// byte-redundant — every binary evaluator op aligns internally), so
/// executing this program through `fhe_program::execute` produces
/// byte-identical weight ciphertexts; a test in the `fhe-program` crate
/// asserts it. Requires `level ≥ LR_STEP_DEPTH + 1`.
pub fn helr_step_program(dim: usize, slots: usize, level: usize, learning_rate: f64) -> Program {
    assert!(dim >= 1, "at least one feature");
    assert!(
        level > LR_STEP_DEPTH,
        "HELR step needs {} levels, got {level}",
        LR_STEP_DEPTH + 1
    );
    let mut instrs = Vec::new();
    let mult = |dst: &str, a: &str, b: &str| Instr::Mult {
        dst: dst.into(),
        a: a.into(),
        b: b.into(),
    };
    let add = |dst: &str, a: &str, b: &str| Instr::Add {
        dst: dst.into(),
        a: a.into(),
        b: b.into(),
    };
    // `value · a` then rescale — the `mul_scalar` + `rescale` idiom.
    let scaled = |instrs: &mut Vec<Instr>, dst: &str, a: &str, value: f64| {
        instrs.push(Instr::MulConst {
            dst: format!("{dst}#raw"),
            a: a.into(),
            value,
        });
        instrs.push(Instr::Rescale {
            dst: dst.into(),
            a: format!("{dst}#raw"),
        });
    };

    // z = Σ_d w_d ⊙ x_d
    instrs.push(mult("z", "w0", "x0"));
    for d in 1..dim {
        instrs.push(mult(&format!("t{d}"), &format!("w{d}"), &format!("x{d}")));
        instrs.push(add("z", "z", &format!("t{d}")));
    }
    // s = σ(z) = C0 + C1·z + C3·z³
    instrs.push(mult("z2", "z", "z"));
    instrs.push(mult("z3", "z2", "z"));
    scaled(&mut instrs, "c1z", "z", SIGMOID_C1);
    scaled(&mut instrs, "c3z3", "z3", SIGMOID_C3);
    instrs.push(add("s", "c1z", "c3z3"));
    instrs.push(Instr::AddConst {
        dst: "s".into(),
        a: "s".into(),
        value: SIGMOID_C0,
    });
    // r = s − y
    instrs.push(Instr::Sub {
        dst: "r".into(),
        a: "s".into(),
        b: "y".into(),
    });
    // Per-feature gradient, batch mean, and weight update.
    for d in 0..dim {
        let g = format!("g{d}");
        instrs.push(mult(&g, "r", &format!("x{d}")));
        let mut step = 1i64;
        while (step as usize) < slots {
            instrs.push(Instr::Rotate {
                dst: format!("{g}rot"),
                a: g.clone(),
                steps: step,
            });
            instrs.push(add(&g, &g, &format!("{g}rot")));
            step *= 2;
        }
        scaled(&mut instrs, &format!("gm{d}"), &g, 1.0 / slots as f64);
        scaled(
            &mut instrs,
            &format!("u{d}"),
            &format!("gm{d}"),
            learning_rate,
        );
        instrs.push(Instr::Sub {
            dst: format!("wout{d}"),
            a: format!("w{d}"),
            b: format!("u{d}"),
        });
    }

    let mut ct_inputs: Vec<CtDecl> = Vec::new();
    for d in 0..dim {
        ct_inputs.push(CtDecl {
            name: format!("w{d}"),
            level,
        });
    }
    for d in 0..dim {
        ct_inputs.push(CtDecl {
            name: format!("x{d}"),
            level,
        });
    }
    ct_inputs.push(CtDecl {
        name: "y".into(),
        level,
    });
    Program {
        name: "helr_step".into(),
        ct_inputs,
        pt_inputs: Vec::new(),
        matrices: Vec::new(),
        instrs,
        outputs: (0..dim).map(|d| format!("wout{d}")).collect(),
    }
}

/// The same update rule in the clear — the correctness reference for
/// [`encrypted_lr_step`]. `xs[d]` is feature `d` across the batch.
pub fn plain_lr_step(weights: &mut [f64], xs: &[Vec<f64>], y01: &[f64], learning_rate: f64) {
    let slots = y01.len();
    let z: Vec<f64> = (0..slots)
        .map(|b| (0..weights.len()).map(|d| weights[d] * xs[d][b]).sum())
        .collect();
    let s: Vec<f64> = z
        .iter()
        .map(|&v| SIGMOID_C0 + SIGMOID_C1 * v + SIGMOID_C3 * v * v * v)
        .collect();
    for (d, w) in weights.iter_mut().enumerate() {
        let g: f64 = (0..slots).map(|b| (s[b] - y01[b]) * xs[d][b]).sum::<f64>() / slots as f64;
        *w -= learning_rate * g;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ckks::{CkksContext, CkksParams, Decryptor, Encoder, Encryptor, KeyGenerator};
    use fhe_math::cfft::Complex;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn encrypted_step_matches_plain_step() {
        let ctx = CkksContext::new(
            CkksParams::builder()
                .log_degree(5)
                .levels(10)
                .scale_bits(30)
                .first_modulus_bits(40)
                .special_modulus_bits(34)
                .dnum(5)
                .build()
                .unwrap(),
        );
        let slots = ctx.params().slots();
        let levels = ctx.params().levels();
        let scale = ctx.params().scale();
        let mut rng = StdRng::seed_from_u64(31);
        let keygen = KeyGenerator::new(ctx.clone());
        let sk = keygen.secret_key(&mut rng);
        let rlk = keygen.relin_key(&mut rng, &sk);
        let gk = keygen.galois_keys(&mut rng, &sk, &lr_fold_steps(slots), false);
        let encoder = Encoder::new(ctx.clone());
        let encryptor = Encryptor::new(ctx.clone());
        let decryptor = Decryptor::new(ctx.clone());
        let ev = Evaluator::new(ctx.clone());

        let dim = 3;
        let xs_plain: Vec<Vec<f64>> = (0..dim)
            .map(|d| {
                (0..slots)
                    .map(|b| ((b * 7 + d * 3) % 5) as f64 * 0.2 - 0.4)
                    .collect()
            })
            .collect();
        let y01: Vec<f64> = (0..slots).map(|b| ((b % 3) == 0) as u8 as f64).collect();
        let mut encrypt_vec = |v: &[f64]| {
            let cv: Vec<Complex> = v.iter().map(|&x| Complex::new(x, 0.0)).collect();
            let pt = encoder.encode(&cv, levels, scale).unwrap();
            encryptor.encrypt_symmetric(&mut rng, &pt, &sk)
        };
        let xs: Vec<Ciphertext> = xs_plain.iter().map(|c| encrypt_vec(c)).collect();
        let y_ct = encrypt_vec(&y01);
        let mut weights: Vec<Ciphertext> =
            (0..dim).map(|_| encrypt_vec(&vec![0.0; slots])).collect();
        let mut plain_weights = vec![0.0f64; dim];

        encrypted_lr_step(
            &ev,
            rlk.switching_key(),
            &gk,
            &mut weights,
            &xs,
            &y_ct,
            slots,
            1.0,
        );
        plain_lr_step(&mut plain_weights, &xs_plain, &y01, 1.0);

        for (d, (w, p)) in weights.iter().zip(&plain_weights).enumerate() {
            let got = encoder.decode(&decryptor.decrypt(w, &sk))[0].re;
            assert!((got - p).abs() < 5e-2, "weight {d}: {got} vs {p}");
        }
    }

    #[test]
    fn fold_steps_cover_the_slot_range() {
        assert_eq!(lr_fold_steps(16), vec![1, 2, 4, 8]);
        assert_eq!(lr_fold_steps(1), Vec::<i64>::new());
    }
}
