//! Memory-access trace replay: a cache simulator that validates the
//! analytical DRAM-traffic model against the functional implementation.
//!
//! The functional crates (built with their `telemetry` feature) can record
//! every limb-buffer touch as a trace event tagged with an operand class
//! (ciphertext limb, switching-key digit, plaintext constant, scratch) and
//! a stable operand id. This module — dependency-free and always compiled —
//! replays such a trace through a pluggable on-chip cache model and reports
//! the DRAM bytes that actually cross the chip boundary, split by operand
//! class the same way [`crate::cost::Cost`] splits its categories. The
//! `trace` cargo feature adds the capture side (the `capture` module),
//! which records traces from the `ckks` crate and diffs the replayed bytes
//! against the model under committed tolerances, mirroring the op-count
//! validator (`crate::validate`).
//!
//! # Cache model
//!
//! The simulated cache is fully associative and write-back, addressed at a
//! configurable block size over the space `(operand id, block index)`. A
//! write miss allocates without fetching (recorded touches cover whole
//! limb ranges, so a missed write never needs the old block contents).
//! Replacement is pluggable via [`CachePolicy`]:
//!
//! - [`CachePolicy::Lru`]: plain least-recently-used.
//! - [`CachePolicy::PinKeys`]: LRU that evicts switching-key blocks only
//!   when nothing else is resident — the MAD strategy of keeping key
//!   digits on-chip across an operation (paper §3.1).
//!
//! When a replay ends, dirty blocks still resident are flushed: live data
//! (ciphertext, key, plaintext classes) must eventually reach DRAM, while
//! dead scratch intermediates are dropped on-chip and never written back —
//! matching the model's assumption that the intermediates of a fused pass
//! do not round-trip.
//!
//! Operand classes resolve *last-wins* over the whole trace: kernels
//! allocate outputs as scratch and the `ckks` wrappers re-tag them (a
//! fresh ciphertext's limbs become `ct`, a switching-key digit's `key`),
//! so the final class of an operand attributes all of its traffic.
//!
//! # Span export
//!
//! [`chrome_trace_json`] renders a trace's RAII spans and per-class byte
//! counters as Chrome trace-event JSON (`{"traceEvents": [...]}`), which
//! loads directly in Perfetto (`ui.perfetto.dev`) with nested span tracks
//! and one counter track per operand class.

use crate::report::Table;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt::Write as _;

/// Operand class of a traced buffer — the replay-side mirror of the
/// functional crates' `fhe_math::telemetry::OperandClass`, kept separate
/// so this module stays dependency-free.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
pub enum TraceClass {
    /// Ciphertext limbs (and the plaintext-sized intermediates the model's
    /// `ct` category also covers).
    Ciphertext,
    /// Switching-key digits.
    Key,
    /// Encoded plaintext constants and matrix diagonals.
    Plaintext,
    /// Kernel scratch: intermediates never re-tagged by a wrapper.
    Scratch,
}

impl TraceClass {
    /// All classes, in display order.
    pub const ALL: [TraceClass; 4] = [
        TraceClass::Ciphertext,
        TraceClass::Key,
        TraceClass::Plaintext,
        TraceClass::Scratch,
    ];

    /// Short stable name (`ct`, `key`, `pt`, `scratch`) — matches the
    /// telemetry layer's naming.
    pub fn name(&self) -> &'static str {
        match self {
            TraceClass::Ciphertext => "ct",
            TraceClass::Key => "key",
            TraceClass::Plaintext => "pt",
            TraceClass::Scratch => "scratch",
        }
    }

    fn index(self) -> usize {
        match self {
            TraceClass::Ciphertext => 0,
            TraceClass::Key => 1,
            TraceClass::Plaintext => 2,
            TraceClass::Scratch => 3,
        }
    }
}

/// One recorded memory-trace event, in program order.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// A kernel touched `bytes` bytes of operand `id` starting at byte
    /// `offset` within the operand's buffer.
    Touch {
        /// Stable operand id (fresh per allocated buffer).
        id: u64,
        /// The operand's class *at touch time*.
        class: TraceClass,
        /// True for a write (or read-modify-write) pass.
        write: bool,
        /// Byte offset of the touched range within the operand.
        offset: u64,
        /// Length of the touched range in bytes.
        bytes: u64,
    },
    /// A wrapper re-classified operand `id` (e.g. kernel output → `ct`).
    Retag {
        /// The re-classified operand.
        id: u64,
        /// Its new class.
        class: TraceClass,
    },
    /// A measurement span opened.
    SpanBegin {
        /// Span name.
        name: String,
        /// Microseconds since the trace started.
        ts_us: u64,
    },
    /// A measurement span closed.
    SpanEnd {
        /// Span name.
        name: String,
        /// Microseconds since the trace started.
        ts_us: u64,
    },
}

/// Replacement policy of the simulated cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CachePolicy {
    /// Least-recently-used over all resident blocks.
    Lru,
    /// LRU, but switching-key blocks are protected: a key block is evicted
    /// only when no non-key block is resident (MAD's pinned key digits).
    PinKeys,
}

/// Configuration of one replay.
#[derive(Clone, Copy, Debug)]
pub struct CacheConfig {
    /// On-chip capacity in bytes; `None` simulates an unbounded cache
    /// (every miss is compulsory).
    pub capacity_bytes: Option<u64>,
    /// Cache block (line) size in bytes.
    pub block_bytes: u64,
    /// Replacement policy.
    pub policy: CachePolicy,
}

impl CacheConfig {
    /// An unbounded cache: replay yields exactly the compulsory-miss
    /// footprint (each distinct block fetched at most once).
    pub fn unbounded(block_bytes: u64) -> Self {
        Self {
            capacity_bytes: None,
            block_bytes,
            policy: CachePolicy::Lru,
        }
    }

    /// A bounded LRU cache.
    pub fn lru(capacity_bytes: u64, block_bytes: u64) -> Self {
        Self {
            capacity_bytes: Some(capacity_bytes),
            block_bytes,
            policy: CachePolicy::Lru,
        }
    }

    /// A bounded key-pinning cache.
    pub fn pin_keys(capacity_bytes: u64, block_bytes: u64) -> Self {
        Self {
            capacity_bytes: Some(capacity_bytes),
            block_bytes,
            policy: CachePolicy::PinKeys,
        }
    }
}

/// DRAM traffic attributed to one operand class.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClassTraffic {
    /// Bytes fetched from DRAM (read misses).
    pub read_bytes: u64,
    /// Bytes written to DRAM (dirty evictions and the final flush).
    pub write_bytes: u64,
}

/// Result of replaying one trace through the cache simulator.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReplayStats {
    per_class: [ClassTraffic; 4],
    /// Block accesses served on-chip.
    pub hits: u64,
    /// Block accesses that missed.
    pub misses: u64,
    /// Misses on never-before-seen blocks.
    pub compulsory: u64,
    /// Distinct bytes touched (`distinct blocks × block size`) — the
    /// compulsory footprint.
    pub footprint_bytes: u64,
}

impl ReplayStats {
    /// Traffic of one class.
    pub fn class(&self, c: TraceClass) -> ClassTraffic {
        self.per_class[c.index()]
    }

    /// Measured counterpart of the model's `ct_read`: ciphertext *and*
    /// scratch fetches, since [`Cost::ct_read`](crate::cost::Cost::ct_read)
    /// covers all ciphertext-sized ring data including intermediates.
    pub fn ct_read_bytes(&self) -> u64 {
        self.class(TraceClass::Ciphertext).read_bytes + self.class(TraceClass::Scratch).read_bytes
    }

    /// Measured counterpart of the model's `ct_write` (ciphertext plus
    /// scratch write-backs).
    pub fn ct_write_bytes(&self) -> u64 {
        self.class(TraceClass::Ciphertext).write_bytes + self.class(TraceClass::Scratch).write_bytes
    }

    /// Measured counterpart of the model's `key_read`.
    pub fn key_read_bytes(&self) -> u64 {
        self.class(TraceClass::Key).read_bytes
    }

    /// Measured counterpart of the model's `pt_read`.
    pub fn pt_read_bytes(&self) -> u64 {
        self.class(TraceClass::Plaintext).read_bytes
    }

    /// Total DRAM bytes fetched.
    pub fn dram_read(&self) -> u64 {
        self.per_class.iter().map(|c| c.read_bytes).sum()
    }

    /// Total DRAM bytes written back.
    pub fn dram_write(&self) -> u64 {
        self.per_class.iter().map(|c| c.write_bytes).sum()
    }

    /// Total DRAM bytes moved.
    pub fn dram_total(&self) -> u64 {
        self.dram_read() + self.dram_write()
    }
}

/// Block address: (operand id, block index within the operand).
type Addr = (u64, u64);

struct Resident {
    stamp: u64,
    dirty: bool,
    class: TraceClass,
    pinned: bool,
}

/// The fully-associative simulator. Separate recency queues for pinned
/// (key) and unpinned blocks make [`CachePolicy::PinKeys`] an O(log n)
/// eviction: pop the unpinned queue first, fall back to pinned.
struct CacheSim {
    cfg: CacheConfig,
    capacity_blocks: Option<u64>,
    blocks: HashMap<Addr, Resident>,
    lru_unpinned: BTreeMap<u64, Addr>,
    lru_pinned: BTreeMap<u64, Addr>,
    seen: HashSet<Addr>,
    clock: u64,
    stats: ReplayStats,
}

impl CacheSim {
    fn new(cfg: CacheConfig) -> Self {
        assert!(cfg.block_bytes > 0, "block size must be positive");
        let capacity_blocks = cfg.capacity_bytes.map(|cap| (cap / cfg.block_bytes).max(1));
        Self {
            cfg,
            capacity_blocks,
            blocks: HashMap::new(),
            lru_unpinned: BTreeMap::new(),
            lru_pinned: BTreeMap::new(),
            seen: HashSet::new(),
            clock: 0,
            stats: ReplayStats::default(),
        }
    }

    fn pins(&self, class: TraceClass) -> bool {
        self.cfg.policy == CachePolicy::PinKeys && class == TraceClass::Key
    }

    fn queue(&mut self, pinned: bool) -> &mut BTreeMap<u64, Addr> {
        if pinned {
            &mut self.lru_pinned
        } else {
            &mut self.lru_unpinned
        }
    }

    fn access(&mut self, addr: Addr, class: TraceClass, write: bool) {
        self.clock += 1;
        let stamp = self.clock;
        if let Some(entry) = self.blocks.get_mut(&addr) {
            self.stats.hits += 1;
            entry.dirty |= write;
            let (old, pinned) = (entry.stamp, entry.pinned);
            entry.stamp = stamp;
            self.queue(pinned).remove(&old);
            self.queue(pinned).insert(stamp, addr);
            return;
        }
        self.stats.misses += 1;
        if self.seen.insert(addr) {
            self.stats.compulsory += 1;
        }
        if !write {
            // Read miss: fetch the block. Write misses allocate without
            // fetching — the recorded touches cover whole limb ranges.
            self.stats.per_class[class.index()].read_bytes += self.cfg.block_bytes;
        }
        let pinned = self.pins(class);
        self.blocks.insert(
            addr,
            Resident {
                stamp,
                dirty: write,
                class,
                pinned,
            },
        );
        self.queue(pinned).insert(stamp, addr);
        if let Some(cap) = self.capacity_blocks {
            while self.blocks.len() as u64 > cap {
                self.evict();
            }
        }
    }

    fn evict(&mut self) {
        let victim = self
            .lru_unpinned
            .pop_first()
            .or_else(|| self.lru_pinned.pop_first())
            .map(|(_, addr)| addr)
            .expect("eviction from a non-empty cache");
        let entry = self.blocks.remove(&victim).expect("victim is resident");
        if entry.dirty {
            self.stats.per_class[entry.class.index()].write_bytes += self.cfg.block_bytes;
        }
    }

    fn finish(mut self) -> ReplayStats {
        // Flush: live classes must reach DRAM; dead scratch never does.
        for entry in self.blocks.values() {
            if entry.dirty && entry.class != TraceClass::Scratch {
                self.stats.per_class[entry.class.index()].write_bytes += self.cfg.block_bytes;
            }
        }
        self.stats.footprint_bytes = self.seen.len() as u64 * self.cfg.block_bytes;
        self.stats
    }
}

/// Resolves each operand's final class, last-wins over touch tags and
/// explicit retags in trace order.
fn final_classes(events: &[TraceEvent]) -> HashMap<u64, TraceClass> {
    let mut map = HashMap::new();
    for e in events {
        match e {
            TraceEvent::Touch { id, class, .. } | TraceEvent::Retag { id, class } => {
                map.insert(*id, *class);
            }
            _ => {}
        }
    }
    map
}

/// Replays a trace through the cache simulator and returns the measured
/// DRAM traffic split by operand class.
pub fn replay(events: &[TraceEvent], cfg: &CacheConfig) -> ReplayStats {
    let classes = final_classes(events);
    let mut sim = CacheSim::new(*cfg);
    for e in events {
        if let TraceEvent::Touch {
            id,
            write,
            offset,
            bytes,
            ..
        } = e
        {
            if *bytes == 0 {
                continue;
            }
            let class = classes[id];
            let first = offset / cfg.block_bytes;
            let last = (offset + bytes - 1) / cfg.block_bytes;
            for b in first..=last {
                sim.access((*id, b), class, *write);
            }
        }
    }
    sim.finish()
}

/// Splits a trace into its top-level span segments, in trace order: each
/// returned `(name, events)` pair holds everything recorded between a
/// depth-0 `SpanBegin` and its matching `SpanEnd` (boundaries included).
/// Events outside any span are dropped.
pub fn split_top_level(events: &[TraceEvent]) -> Vec<(String, Vec<TraceEvent>)> {
    let mut out: Vec<(String, Vec<TraceEvent>)> = Vec::new();
    let mut depth = 0usize;
    for e in events {
        match e {
            TraceEvent::SpanBegin { name, .. } => {
                if depth == 0 {
                    out.push((name.clone(), Vec::new()));
                }
                depth += 1;
                if let Some((_, seg)) = out.last_mut() {
                    seg.push(e.clone());
                }
            }
            TraceEvent::SpanEnd { .. } => {
                if depth > 0 {
                    if let Some((_, seg)) = out.last_mut() {
                        seg.push(e.clone());
                    }
                    depth -= 1;
                }
            }
            _ => {
                if depth > 0 {
                    if let Some((_, seg)) = out.last_mut() {
                        seg.push(e.clone());
                    }
                }
            }
        }
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a trace as Chrome trace-event JSON, loadable in Perfetto.
///
/// Spans become nested `B`/`E` duration events on one thread track;
/// cumulative bytes touched per operand class become one `C` counter
/// track, sampled at every span boundary (touch records carry no
/// timestamp of their own).
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut out = String::from("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
    out.push_str(
        "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \
         \"args\": {\"name\": \"simfhe trace\"}}",
    );
    let mut touched = [0u64; 4];
    let counter = |out: &mut String, ts: u64, touched: &[u64; 4]| {
        let _ = write!(
            out,
            ",\n  {{\"name\": \"bytes touched\", \"ph\": \"C\", \"ts\": {ts}, \"pid\": 1, \
             \"args\": {{\"ct\": {}, \"key\": {}, \"pt\": {}, \"scratch\": {}}}}}",
            touched[0], touched[1], touched[2], touched[3]
        );
    };
    for e in events {
        match e {
            TraceEvent::Touch { class, bytes, .. } => {
                touched[class.index()] += bytes;
            }
            TraceEvent::SpanBegin { name, ts_us } => {
                let _ = write!(
                    out,
                    ",\n  {{\"name\": \"{}\", \"cat\": \"span\", \"ph\": \"B\", \
                     \"ts\": {ts_us}, \"pid\": 1, \"tid\": 1}}",
                    json_escape(name)
                );
                counter(&mut out, *ts_us, &touched);
            }
            TraceEvent::SpanEnd { name, ts_us } => {
                let _ = write!(
                    out,
                    ",\n  {{\"name\": \"{}\", \"cat\": \"span\", \"ph\": \"E\", \
                     \"ts\": {ts_us}, \"pid\": 1, \"tid\": 1}}",
                    json_escape(name)
                );
                counter(&mut out, *ts_us, &touched);
            }
            TraceEvent::Retag { .. } => {}
        }
    }
    out.push_str("\n]}\n");
    out
}

/// One point of the measured-vs-modeled cache sweep (Figure-6 style): a
/// primitive replayed at one on-chip size against the model at the
/// caching level that size affords.
#[derive(Clone, Debug)]
pub struct SweepRow {
    /// Primitive name.
    pub primitive: String,
    /// On-chip capacity in MB (fractional at reduced parameters).
    pub cache_mb: f64,
    /// The model's caching level for this capacity (display string).
    pub caching: String,
    /// The analytical model's DRAM bytes.
    pub modeled_bytes: u64,
    /// The cache simulator's DRAM bytes.
    pub measured_bytes: u64,
}

/// Renders sweep rows as a [`Table`] (columns: primitive, cache_KiB,
/// caching, modeled_B, measured_B, meas/model) for text or CSV output.
pub fn sweep_table(rows: &[SweepRow]) -> Table {
    let mut t = Table::new(
        "cache sweep: modeled vs cache-replayed DRAM bytes",
        &[
            "primitive",
            "cache_KiB",
            "caching",
            "modeled_B",
            "measured_B",
            "meas/model",
        ],
    );
    for r in rows {
        let ratio = if r.modeled_bytes == 0 {
            "n/a".to_string()
        } else {
            format!("{:.3}", r.measured_bytes as f64 / r.modeled_bytes as f64)
        };
        t.row(&[
            r.primitive.clone(),
            format!("{:.1}", r.cache_mb * 1024.0),
            r.caching.clone(),
            r.modeled_bytes.to_string(),
            r.measured_bytes.to_string(),
            ratio,
        ]);
    }
    t
}

/// Converts the telemetry layer's records into replayable [`TraceEvent`]s.
#[cfg(feature = "trace")]
pub fn from_telemetry(records: &[fhe_math::telemetry::TraceRecord]) -> Vec<TraceEvent> {
    use fhe_math::telemetry::{OperandClass, TraceRecord};
    let class = |c: OperandClass| match c {
        OperandClass::Ciphertext => TraceClass::Ciphertext,
        OperandClass::Key => TraceClass::Key,
        OperandClass::Plaintext => TraceClass::Plaintext,
        OperandClass::Scratch => TraceClass::Scratch,
    };
    records
        .iter()
        .map(|r| match r {
            TraceRecord::Touch {
                tag,
                write,
                offset,
                bytes,
            } => TraceEvent::Touch {
                id: tag.id,
                class: class(tag.class),
                write: *write,
                offset: *offset,
                bytes: *bytes,
            },
            TraceRecord::Retag { id, class: c } => TraceEvent::Retag {
                id: *id,
                class: class(*c),
            },
            TraceRecord::SpanBegin { name, ts_us } => TraceEvent::SpanBegin {
                name: (*name).to_string(),
                ts_us: *ts_us,
            },
            TraceRecord::SpanEnd { name, ts_us } => TraceEvent::SpanEnd {
                name: (*name).to_string(),
                ts_us: *ts_us,
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const B: u64 = 64;

    fn touch(id: u64, class: TraceClass, write: bool, offset: u64, bytes: u64) -> TraceEvent {
        TraceEvent::Touch {
            id,
            class,
            write,
            offset,
            bytes,
        }
    }

    /// `passes` sequential read scans over `blocks` blocks of operand 0.
    fn scan_trace(passes: usize, blocks: u64, class: TraceClass) -> Vec<TraceEvent> {
        let mut t = Vec::new();
        for _ in 0..passes {
            for b in 0..blocks {
                t.push(touch(0, class, false, b * B, B));
            }
        }
        t
    }

    #[test]
    fn sequential_scan_fitting_in_cache_misses_once() {
        // Working set (8 blocks) < capacity (16): compulsory misses only.
        let t = scan_trace(4, 8, TraceClass::Ciphertext);
        let s = replay(&t, &CacheConfig::lru(16 * B, B));
        assert_eq!(s.misses, 8);
        assert_eq!(s.compulsory, 8);
        assert_eq!(s.hits, 3 * 8);
        assert_eq!(s.ct_read_bytes(), 8 * B);
        assert_eq!(s.dram_write(), 0, "clean blocks are never written back");
        assert_eq!(s.footprint_bytes, 8 * B);
    }

    #[test]
    fn sequential_scan_exceeding_cache_thrashes() {
        // Working set (8 blocks) > capacity (4) under LRU: every access of
        // every pass misses — the classic sequential-thrash closed form.
        let t = scan_trace(3, 8, TraceClass::Ciphertext);
        let s = replay(&t, &CacheConfig::lru(4 * B, B));
        assert_eq!(s.misses, 3 * 8);
        assert_eq!(s.compulsory, 8);
        assert_eq!(s.hits, 0);
        assert_eq!(s.ct_read_bytes(), 3 * 8 * B);
    }

    #[test]
    fn key_pinning_keeps_keys_resident_under_streaming() {
        // 4 key blocks re-read between streaming scans of 8 ct blocks, in
        // a 6-block cache. Plain LRU streams the keys out every time;
        // PinKeys serves every key re-read on-chip.
        let mut t = Vec::new();
        for round in 0..3 {
            for b in 0..4 {
                t.push(touch(1, TraceClass::Key, false, b * B, B));
            }
            for b in 0..8 {
                t.push(touch(2 + round, TraceClass::Ciphertext, false, b * B, B));
            }
        }
        let lru = replay(&t, &CacheConfig::lru(6 * B, B));
        let pinned = replay(&t, &CacheConfig::pin_keys(6 * B, B));
        assert_eq!(lru.key_read_bytes(), 3 * 4 * B, "LRU refetches keys");
        assert_eq!(
            pinned.key_read_bytes(),
            4 * B,
            "pinned keys are fetched once"
        );
        assert!(pinned.dram_read() < lru.dram_read());
    }

    #[test]
    fn writeback_attributes_dirty_evictions_and_flush_by_class() {
        // Write 2 ct blocks, then stream 4 pt reads through a 2-block
        // cache: the ct blocks are evicted dirty (2 write-backs), the pt
        // blocks leave clean.
        let mut t = vec![touch(0, TraceClass::Ciphertext, true, 0, 2 * B)];
        for b in 0..4 {
            t.push(touch(1, TraceClass::Plaintext, false, b * B, B));
        }
        let s = replay(&t, &CacheConfig::lru(2 * B, B));
        assert_eq!(s.ct_write_bytes(), 2 * B);
        assert_eq!(s.pt_read_bytes(), 4 * B);
        assert_eq!(s.class(TraceClass::Plaintext).write_bytes, 0);

        // Unbounded: the dirty ct blocks survive to the final flush.
        let s = replay(&t, &CacheConfig::unbounded(B));
        assert_eq!(s.ct_write_bytes(), 2 * B);
        assert_eq!(s.ct_read_bytes(), 0, "written-first blocks never fetch");
    }

    #[test]
    fn dead_scratch_is_dropped_not_flushed() {
        // A scratch intermediate written and read back entirely on-chip
        // costs no DRAM traffic at all.
        let t = vec![
            touch(0, TraceClass::Scratch, true, 0, 4 * B),
            touch(0, TraceClass::Scratch, false, 0, 4 * B),
        ];
        let s = replay(&t, &CacheConfig::unbounded(B));
        assert_eq!(s.dram_total(), 0);
        // …but under capacity pressure its evictions still cost writes.
        let mut t = t;
        for b in 0..8 {
            t.push(touch(1, TraceClass::Ciphertext, false, b * B, B));
        }
        let s = replay(&t, &CacheConfig::lru(2 * B, B));
        assert_eq!(s.ct_write_bytes(), 4 * B, "evicted dirty scratch pays");
    }

    #[test]
    fn retag_last_wins_attributes_all_traffic() {
        // An operand touched as scratch, then retagged ct: its reads and
        // its flush write all land in the ct category.
        let t = vec![
            touch(7, TraceClass::Scratch, true, 0, 2 * B),
            TraceEvent::Retag {
                id: 7,
                class: TraceClass::Ciphertext,
            },
        ];
        let s = replay(&t, &CacheConfig::unbounded(B));
        assert_eq!(s.class(TraceClass::Ciphertext).write_bytes, 2 * B);
        assert_eq!(s.class(TraceClass::Scratch).write_bytes, 0);
    }

    #[test]
    fn partial_touches_expand_to_covering_blocks() {
        // 100 bytes starting at offset 60 with 64-byte blocks spans
        // blocks 0..=2.
        let t = vec![touch(0, TraceClass::Ciphertext, false, 60, 100)];
        let s = replay(&t, &CacheConfig::unbounded(B));
        assert_eq!(s.misses, 3);
        assert_eq!(s.ct_read_bytes(), 3 * B);
    }

    #[test]
    fn split_top_level_segments_by_outermost_span() {
        let t = vec![
            TraceEvent::SpanBegin {
                name: "Add".into(),
                ts_us: 0,
            },
            touch(0, TraceClass::Ciphertext, false, 0, B),
            TraceEvent::SpanEnd {
                name: "Add".into(),
                ts_us: 5,
            },
            touch(9, TraceClass::Scratch, true, 0, B), // outside any span
            TraceEvent::SpanBegin {
                name: "Mult".into(),
                ts_us: 10,
            },
            TraceEvent::SpanBegin {
                name: "KeySwitch".into(),
                ts_us: 11,
            },
            touch(1, TraceClass::Key, false, 0, B),
            TraceEvent::SpanEnd {
                name: "KeySwitch".into(),
                ts_us: 12,
            },
            TraceEvent::SpanEnd {
                name: "Mult".into(),
                ts_us: 20,
            },
        ];
        let segs = split_top_level(&t);
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].0, "Add");
        assert_eq!(segs[0].1.len(), 3);
        assert_eq!(segs[1].0, "Mult");
        assert_eq!(segs[1].1.len(), 5, "nested span events stay inside");
    }

    #[test]
    fn chrome_trace_is_structurally_sound() {
        let t = vec![
            TraceEvent::SpanBegin {
                name: "KeySwitch".into(),
                ts_us: 1,
            },
            touch(0, TraceClass::Key, false, 0, 3 * B),
            TraceEvent::SpanBegin {
                name: "ModUp".into(),
                ts_us: 2,
            },
            TraceEvent::SpanEnd {
                name: "ModUp".into(),
                ts_us: 3,
            },
            TraceEvent::SpanEnd {
                name: "KeySwitch".into(),
                ts_us: 4,
            },
        ];
        let json = chrome_trace_json(&t);
        assert!(json.starts_with("{\"displayTimeUnit\""));
        assert!(json.contains("\"traceEvents\""));
        assert_eq!(json.matches("\"ph\": \"B\"").count(), 2);
        assert_eq!(json.matches("\"ph\": \"E\"").count(), 2);
        // A counter sample at every span boundary, keys bytes visible.
        assert_eq!(json.matches("\"ph\": \"C\"").count(), 4);
        assert!(json.contains(&format!("\"key\": {}", 3 * B)));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn sweep_table_has_expected_columns() {
        let rows = vec![SweepRow {
            primitive: "Mult".into(),
            cache_mb: 0.0009765625, // 1 KiB
            caching: "O(1)-limb".into(),
            modeled_bytes: 1000,
            measured_bytes: 1100,
        }];
        let t = sweep_table(&rows);
        let csv = t.to_csv();
        assert!(csv.starts_with("primitive,cache_KiB,caching,modeled_B,measured_B,meas/model"));
        assert!(csv.contains("Mult,1.0,O(1)-limb,1000,1100,1.100"));
    }

    fn event_strategy() -> impl Strategy<Value = TraceEvent> {
        (
            0u64..6,
            prop_oneof![
                Just(TraceClass::Ciphertext),
                Just(TraceClass::Key),
                Just(TraceClass::Plaintext),
                Just(TraceClass::Scratch),
            ],
            any::<bool>(),
            0u64..1024,
            1u64..512,
        )
            .prop_map(|(id, class, write, offset, bytes)| TraceEvent::Touch {
                id,
                class,
                write,
                offset,
                bytes,
            })
    }

    proptest! {
        #[test]
        fn unbounded_replay_misses_exactly_the_footprint(
            events in prop::collection::vec(event_strategy(), 1..200),
        ) {
            let cfg = CacheConfig::unbounded(B);
            let s = replay(&events, &cfg);
            // Every miss is compulsory, and the footprint is the set of
            // distinct (operand, block) pairs — computed independently.
            let mut distinct = HashSet::new();
            for e in &events {
                if let TraceEvent::Touch { id, offset, bytes, .. } = e {
                    for b in (offset / B)..=((offset + bytes - 1) / B) {
                        distinct.insert((*id, b));
                    }
                }
            }
            prop_assert_eq!(s.misses, s.compulsory);
            prop_assert_eq!(s.misses, distinct.len() as u64);
            prop_assert_eq!(s.footprint_bytes, distinct.len() as u64 * B);
            // Reads never exceed the footprint (each block fetched ≤ once).
            prop_assert!(s.dram_read() <= s.footprint_bytes);
        }

        #[test]
        fn bounded_replay_never_beats_unbounded(
            events in prop::collection::vec(event_strategy(), 1..150),
            cap_blocks in 1u64..32,
        ) {
            let unbounded = replay(&events, &CacheConfig::unbounded(B));
            for policy in [CachePolicy::Lru, CachePolicy::PinKeys] {
                let cfg = CacheConfig { capacity_bytes: Some(cap_blocks * B), block_bytes: B, policy };
                let s = replay(&events, &cfg);
                prop_assert!(s.dram_read() >= unbounded.dram_read());
                prop_assert!(s.misses >= unbounded.misses);
                prop_assert_eq!(s.compulsory, unbounded.compulsory);
            }
        }
    }
}
