//! Application workloads as schedules of primitive operations.
//!
//! `fhe-apps` builds HELR logistic-regression training and ResNet-20
//! inference as [`Workload`]s; the cost model executes them operation by
//! operation, tracking limb counts and inserting bootstrap costs where the
//! schedule demands them.

use crate::cost::Cost;
use crate::matvec::MatVecShape;
use crate::primitives::CostModel;
use std::fmt;

/// One scheduled primitive at a known limb count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkloadOp {
    /// Ciphertext–ciphertext multiplication (with rescale).
    Mult {
        /// Limb count on entry.
        ell: usize,
    },
    /// Plaintext multiplication (with rescale).
    PtMult {
        /// Limb count on entry.
        ell: usize,
    },
    /// Ciphertext addition.
    Add {
        /// Limb count on entry.
        ell: usize,
    },
    /// Plaintext addition.
    PtAdd {
        /// Limb count on entry.
        ell: usize,
    },
    /// Slot rotation.
    Rotate {
        /// Limb count on entry.
        ell: usize,
    },
    /// Complex conjugation (same cost shape as a rotation).
    Conjugate {
        /// Limb count on entry.
        ell: usize,
    },
    /// A plaintext matrix–vector product with the given diagonal count.
    MatVec {
        /// Limb count on entry.
        ell: usize,
        /// Nonzero generalized diagonals (rotations).
        diagonals: usize,
    },
    /// A full bootstrap starting from an exhausted ciphertext.
    Bootstrap {
        /// Limb count of the exhausted input.
        from_limbs: usize,
    },
}

/// A named sequence of `(operation, repeat count)` pairs.
#[derive(Clone, Debug, Default)]
pub struct Workload {
    /// Display name.
    pub name: String,
    ops: Vec<(WorkloadOp, u64)>,
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} op groups)", self.name, self.ops.len())
    }
}

impl Workload {
    /// Creates an empty workload.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ops: Vec::new(),
        }
    }

    /// Appends `count` repetitions of `op`.
    pub fn push(&mut self, op: WorkloadOp, count: u64) -> &mut Self {
        if count > 0 {
            self.ops.push((op, count));
        }
        self
    }

    /// The scheduled `(op, count)` pairs.
    pub fn ops(&self) -> &[(WorkloadOp, u64)] {
        &self.ops
    }

    /// Total primitive-operation count (bootstraps count once each).
    pub fn op_count(&self) -> u64 {
        self.ops.iter().map(|&(_, c)| c).sum()
    }

    /// Number of bootstraps in the schedule.
    pub fn bootstrap_count(&self) -> u64 {
        self.ops
            .iter()
            .filter(|(op, _)| matches!(op, WorkloadOp::Bootstrap { .. }))
            .map(|&(_, c)| c)
            .sum()
    }

    /// Concatenates another workload's schedule `times` times.
    pub fn extend_repeated(&mut self, other: &Workload, times: u64) -> &mut Self {
        for _ in 0..times {
            self.ops.extend(other.ops.iter().copied());
        }
        self
    }
}

impl CostModel {
    /// Cost of one scheduled operation.
    pub fn op_cost(&self, op: WorkloadOp) -> Cost {
        match op {
            WorkloadOp::Mult { ell } => self.mult(ell),
            WorkloadOp::PtMult { ell } => self.pt_mult(ell),
            WorkloadOp::Add { ell } => self.add(ell),
            WorkloadOp::PtAdd { ell } => self.pt_add(ell),
            WorkloadOp::Rotate { ell } | WorkloadOp::Conjugate { ell } => self.rotate(ell),
            WorkloadOp::MatVec { ell, diagonals } => {
                self.pt_mat_vec_mult(MatVecShape { ell, diagonals }).cost
            }
            WorkloadOp::Bootstrap { from_limbs } => self.bootstrap_from(from_limbs).cost,
        }
    }

    /// Cost of a workload broken down by operation kind, in first-seen
    /// order. Bootstraps typically dominate (the paper's ~80% claim); this
    /// is how the `fhe-apps` analyses verify it.
    pub fn workload_breakdown(&self, w: &Workload) -> Vec<(&'static str, Cost)> {
        let mut order: Vec<&'static str> = Vec::new();
        let mut acc: std::collections::HashMap<&'static str, Cost> =
            std::collections::HashMap::new();
        for &(op, count) in w.ops() {
            let kind = match op {
                WorkloadOp::Mult { .. } => "Mult",
                WorkloadOp::PtMult { .. } => "PtMult",
                WorkloadOp::Add { .. } => "Add",
                WorkloadOp::PtAdd { .. } => "PtAdd",
                WorkloadOp::Rotate { .. } => "Rotate",
                WorkloadOp::Conjugate { .. } => "Conjugate",
                WorkloadOp::MatVec { .. } => "MatVec",
                WorkloadOp::Bootstrap { .. } => "Bootstrap",
            };
            if !acc.contains_key(kind) {
                order.push(kind);
            }
            *acc.entry(kind).or_insert(Cost::ZERO) += self.op_cost(op) * count;
        }
        order.into_iter().map(|k| (k, acc[k])).collect()
    }

    /// Total cost of a workload.
    pub fn workload_cost(&self, w: &Workload) -> Cost {
        w.ops()
            .iter()
            .map(|&(op, count)| self.op_cost(op) * count)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opts::MadConfig;
    use crate::params::SchemeParams;

    #[test]
    fn workload_accumulates_costs_linearly() {
        let model = CostModel::new(SchemeParams::baseline(), MadConfig::baseline());
        let mut w = Workload::new("test");
        w.push(WorkloadOp::Mult { ell: 20 }, 3)
            .push(WorkloadOp::Add { ell: 20 }, 5);
        let cost = model.workload_cost(&w);
        let manual = model.mult(20) * 3 + model.add(20) * 5;
        assert_eq!(cost.ops(), manual.ops());
        assert_eq!(cost.dram_total(), manual.dram_total());
        assert_eq!(w.op_count(), 8);
    }

    #[test]
    fn zero_count_ops_are_dropped() {
        let mut w = Workload::new("sparse");
        w.push(WorkloadOp::Add { ell: 5 }, 0);
        assert!(w.ops().is_empty());
    }

    #[test]
    fn bootstrap_counting_and_repetition() {
        let mut iter = Workload::new("iteration");
        iter.push(WorkloadOp::Mult { ell: 10 }, 2)
            .push(WorkloadOp::Bootstrap { from_limbs: 2 }, 1);
        let mut total = Workload::new("training");
        total.extend_repeated(&iter, 4);
        assert_eq!(total.bootstrap_count(), 4);
        assert_eq!(total.op_count(), 12);
    }

    #[test]
    fn breakdown_sums_to_total_and_preserves_order() {
        let model = CostModel::new(SchemeParams::baseline(), MadConfig::baseline());
        let mut w = Workload::new("mixed");
        w.push(WorkloadOp::Rotate { ell: 12 }, 4)
            .push(WorkloadOp::Mult { ell: 12 }, 2)
            .push(WorkloadOp::Rotate { ell: 11 }, 1)
            .push(WorkloadOp::Bootstrap { from_limbs: 2 }, 1);
        let breakdown = model.workload_breakdown(&w);
        assert_eq!(
            breakdown.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec!["Rotate", "Mult", "Bootstrap"]
        );
        let sum: Cost = breakdown.iter().map(|&(_, c)| c).sum();
        let total = model.workload_cost(&w);
        assert_eq!(sum.ops(), total.ops());
        assert_eq!(sum.dram_total(), total.dram_total());
    }

    #[test]
    fn mad_config_reduces_workload_cost() {
        let w = {
            let mut w = Workload::new("mixed");
            w.push(WorkloadOp::Mult { ell: 30 }, 4)
                .push(WorkloadOp::Rotate { ell: 30 }, 8)
                .push(
                    WorkloadOp::MatVec {
                        ell: 30,
                        diagonals: 31,
                    },
                    2,
                );
            w
        };
        let base = CostModel::new(SchemeParams::baseline(), MadConfig::baseline());
        let mad = CostModel::new(SchemeParams::baseline(), MadConfig::all());
        assert!(
            mad.workload_cost(&w).dram_total() < base.workload_cost(&w).dram_total(),
            "MAD must reduce workload DRAM traffic"
        );
    }
}
