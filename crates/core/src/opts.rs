//! The MAD optimization switches (Section 3 of the paper).
//!
//! Caching levels are cumulative — each builds on the previous, exactly as
//! Figure 2 presents them. Algorithmic optimizations are independent flags
//! (Figure 3 applies them cumulatively, but SimFHE can toggle each in
//! isolation for ablation).

use std::fmt;

/// How many ciphertext limbs the on-chip memory strategy exploits
/// (Section 3.1, in increasing order of required cache size).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
pub enum CachingLevel {
    /// No fusion: every sub-operation round-trips limbs through DRAM
    /// (the Jung et al. GPU baseline of Figure 1a).
    Baseline,
    /// Cache O(1) limbs (~1 MB): fuse consecutive limb-wise sub-operations
    /// on one limb before writing it back (Figure 1b).
    OneLimb,
    /// Cache O(β) limbs (~6 MB): keep one limb of each key-switching digit
    /// resident across the rotations of a `PtMatVecMult`.
    BetaLimbs,
    /// Cache O(α) limbs (~27 MB): perform the slot-wise basis conversions
    /// entirely on-chip, generating new limbs without slot-format
    /// round-trips.
    AlphaLimbs,
    /// `O(α)` plus re-ordered limb computation: produce the α dropped
    /// limbs first so `ModDown` combines them on the fly.
    LimbReorder,
}

impl CachingLevel {
    /// All levels in cumulative order (the x-axis of Figure 2).
    pub const ALL: [CachingLevel; 5] = [
        CachingLevel::Baseline,
        CachingLevel::OneLimb,
        CachingLevel::BetaLimbs,
        CachingLevel::AlphaLimbs,
        CachingLevel::LimbReorder,
    ];

    /// Minimum on-chip memory in MB this level requires at the paper's
    /// baseline parameters (§3.1: 1 MB, 6 MB, 27 MB).
    pub fn min_cache_mb(&self, alpha: usize, beta: usize, limb_mb: f64) -> f64 {
        match self {
            CachingLevel::Baseline => 0.5 * limb_mb,
            CachingLevel::OneLimb => limb_mb,
            CachingLevel::BetaLimbs => (2 * beta) as f64 * limb_mb,
            CachingLevel::AlphaLimbs | CachingLevel::LimbReorder => {
                (2 * alpha + 3) as f64 * limb_mb
            }
        }
    }

    /// The strongest level affordable with `cache_mb` of on-chip memory —
    /// how SimFHE "automatically deploys the applicable optimization for a
    /// large enough on-chip memory" (§4.1).
    pub fn best_for_cache(cache_mb: f64, alpha: usize, beta: usize, limb_mb: f64) -> Self {
        let mut best = CachingLevel::Baseline;
        for lvl in CachingLevel::ALL {
            if lvl.min_cache_mb(alpha, beta, limb_mb) <= cache_mb {
                best = lvl;
            }
        }
        best
    }
}

impl fmt::Display for CachingLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CachingLevel::Baseline => "baseline",
            CachingLevel::OneLimb => "O(1)-limb",
            CachingLevel::BetaLimbs => "O(β)-limb",
            CachingLevel::AlphaLimbs => "O(α)-limb",
            CachingLevel::LimbReorder => "limb re-order",
        };
        f.write_str(s)
    }
}

/// The algorithmic optimizations of Section 3.2.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug, Hash)]
pub struct AlgoOpts {
    /// Merge the key-switch `ModDown` with `Rescale` in `Mult`
    /// (Figure 4c).
    pub moddown_merge: bool,
    /// Hoist the `ModDown` out of back-to-back rotations in
    /// `PtMatVecMult` (Figure 5b).
    pub moddown_hoist: bool,
    /// The classic `ModUp` hoisting for rotation batches (Figure 5c pairs
    /// it with ModDown hoisting).
    pub modup_hoist: bool,
    /// Regenerate the uniform half of each switching key from a PRNG seed,
    /// halving key reads.
    pub key_compression: bool,
}

impl AlgoOpts {
    /// Everything off.
    pub fn none() -> Self {
        Self::default()
    }

    /// Everything on (the paper's final configuration).
    pub fn all() -> Self {
        Self {
            moddown_merge: true,
            moddown_hoist: true,
            modup_hoist: true,
            key_compression: true,
        }
    }

    /// The cumulative ladder of Figure 3: baseline (hoisted ModUp only, as
    /// in Jung et al.), + merge, + ModDown hoisting, + key compression.
    pub fn figure3_ladder() -> [(&'static str, AlgoOpts); 4] {
        [
            (
                "baseline (caching only)",
                AlgoOpts {
                    modup_hoist: true,
                    ..AlgoOpts::none()
                },
            ),
            (
                "+ ModDown merge",
                AlgoOpts {
                    modup_hoist: true,
                    moddown_merge: true,
                    ..AlgoOpts::none()
                },
            ),
            (
                "+ ModDown hoisting",
                AlgoOpts {
                    modup_hoist: true,
                    moddown_merge: true,
                    moddown_hoist: true,
                    ..AlgoOpts::none()
                },
            ),
            ("+ key compression", AlgoOpts::all()),
        ]
    }
}

/// A full MAD configuration: a caching level plus algorithmic flags.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct MadConfig {
    /// The caching level in effect.
    pub caching: CachingLevel,
    /// The algorithmic optimization flags.
    pub algo: AlgoOpts,
}

impl MadConfig {
    /// The unoptimized baseline (Jung et al. structure: BSGS with ModUp
    /// hoisting, no MAD).
    pub fn baseline() -> Self {
        Self {
            caching: CachingLevel::Baseline,
            algo: AlgoOpts {
                modup_hoist: true,
                ..AlgoOpts::none()
            },
        }
    }

    /// All MAD optimizations enabled.
    pub fn all() -> Self {
        Self {
            caching: CachingLevel::LimbReorder,
            algo: AlgoOpts::all(),
        }
    }

    /// True if the caching level is at least `level`.
    pub fn caches_at_least(&self, level: CachingLevel) -> bool {
        self.caching >= level
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caching_levels_are_ordered() {
        assert!(CachingLevel::Baseline < CachingLevel::OneLimb);
        assert!(CachingLevel::OneLimb < CachingLevel::BetaLimbs);
        assert!(CachingLevel::BetaLimbs < CachingLevel::AlphaLimbs);
        assert!(CachingLevel::AlphaLimbs < CachingLevel::LimbReorder);
    }

    #[test]
    fn cache_requirements_match_paper_examples() {
        // Paper §3.1 with α = 12, β = 3, 1 MB limbs: O(1) → 1 MB,
        // O(β) → 6 MB, O(α) → 27 MB.
        let (alpha, beta, limb) = (12, 3, 1.0);
        assert_eq!(CachingLevel::OneLimb.min_cache_mb(alpha, beta, limb), 1.0);
        assert_eq!(CachingLevel::BetaLimbs.min_cache_mb(alpha, beta, limb), 6.0);
        assert_eq!(
            CachingLevel::AlphaLimbs.min_cache_mb(alpha, beta, limb),
            27.0
        );
    }

    #[test]
    fn best_for_cache_picks_strongest_affordable() {
        let (alpha, beta, limb) = (12, 3, 1.0);
        assert_eq!(
            CachingLevel::best_for_cache(0.5, alpha, beta, limb),
            CachingLevel::Baseline
        );
        assert_eq!(
            CachingLevel::best_for_cache(2.0, alpha, beta, limb),
            CachingLevel::OneLimb
        );
        assert_eq!(
            CachingLevel::best_for_cache(6.0, alpha, beta, limb),
            CachingLevel::BetaLimbs
        );
        assert_eq!(
            CachingLevel::best_for_cache(32.0, alpha, beta, limb),
            CachingLevel::LimbReorder
        );
    }

    #[test]
    fn figure3_ladder_is_cumulative() {
        let ladder = AlgoOpts::figure3_ladder();
        assert!(!ladder[0].1.moddown_merge);
        assert!(ladder[1].1.moddown_merge && !ladder[1].1.moddown_hoist);
        assert!(ladder[2].1.moddown_hoist && !ladder[2].1.key_compression);
        assert_eq!(ladder[3].1, AlgoOpts::all());
    }
}
