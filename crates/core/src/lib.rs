#![warn(missing_docs)]
// Hot kernels index several slices in lockstep (limbs, roots, outputs);
// the explicit-index form mirrors the paper's pseudocode and stays clear.
#![allow(clippy::needless_range_loop)]

//! SimFHE: an analytical performance model of CKKS fully homomorphic
//! encryption, reproducing the MAD paper (MICRO '23): "Memory-Aware Design
//! Techniques for Accelerating Fully Homomorphic Encryption".
//!
//! The simulator tracks, for every CKKS primitive (Table 2 of the paper)
//! and for full bootstrapping (Algorithm 4), the number of modular
//! operations and the DRAM bytes moved between main memory and a
//! configurable on-chip memory. On top of it:
//!
//! - [`opts`] toggles the paper's MAD optimizations — caching levels
//!   (§3.1) and algorithmic optimizations (§3.2) — individually.
//! - [`hardware`] models the five accelerator designs of Table 6 with a
//!   roofline runtime.
//! - [`throughput`] implements the Han–Ki bootstrapping-throughput metric
//!   (Eq. 3).
//! - [`search`] runs the brute-force memory-aware parameter search that
//!   produces Table 5.
//! - [`workload`] executes application schedules (HELR logistic
//!   regression, ResNet-20 inference — built in the `fhe-apps` crate).
//!
//! # Example
//!
//! ```
//! use simfhe::params::SchemeParams;
//! use simfhe::opts::MadConfig;
//! use simfhe::primitives::CostModel;
//!
//! let baseline = CostModel::new(SchemeParams::baseline(), MadConfig::baseline());
//! let mad = CostModel::new(SchemeParams::mad_optimal(), MadConfig::all());
//! let b0 = baseline.bootstrap();
//! let b1 = mad.bootstrap();
//! // MAD improves bootstrapping arithmetic intensity (the paper reports 3×).
//! assert!(b1.cost.arithmetic_intensity() > 1.5 * b0.cost.arithmetic_intensity());
//! ```

pub mod area;
pub mod bootstrap;
#[cfg(feature = "trace")]
pub mod capture;
pub mod cost;
pub mod hardware;
pub mod matvec;
pub mod opts;
pub mod params;
pub mod primitives;
pub mod program;
pub mod report;
pub mod search;
pub mod throughput;
pub mod trace;
#[cfg(feature = "validate")]
pub mod validate;
pub mod workload;

pub use cost::Cost;
pub use hardware::HardwareConfig;
pub use opts::{AlgoOpts, CachingLevel, MadConfig};
pub use params::SchemeParams;
pub use primitives::CostModel;
pub use workload::{Workload, WorkloadOp};
