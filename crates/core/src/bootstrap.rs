//! Cost model of the full CKKS bootstrapping pipeline (Algorithm 4):
//! ModRaise, CoeffToSlot (`fftIter` matrix products), the real/imaginary
//! split, EvalMod (approximate modular reduction), recombination, and
//! SlotToCoeff.
//!
//! The level schedule matches the published parameter sets: bootstrapping
//! consumes `2·fftIter + 2 + 7` limbs (7 for the sine evaluation), which
//! reproduces Table 6's `log Q_1` values — e.g. the GPU baseline
//! (`L = 35`, `fftIter = 3`, `log q = 54`) retains
//! `(35 − 15)·54 = 1080` bits, and the MAD set (`L = 40`, `fftIter = 6`,
//! `log q = 50`) retains `(40 − 21)·50 = 950` bits.

use crate::cost::Cost;
use crate::matvec::MatVecShape;
use crate::primitives::CostModel;

/// Limbs consumed by the sine (EvalMod) phase — one per multiplicative
/// level of the degree-~2⁷ double-angle Chebyshev evaluation used by the
/// works the paper compares against.
pub const EVAL_MOD_DEPTH: usize = 7;

/// Ciphertext `Mult` operations per level of one EvalMod evaluation
/// (baby-step/giant-step Chebyshev ladder plus double-angle steps).
const EVAL_MOD_MULTS_PER_LEVEL: [usize; EVAL_MOD_DEPTH] = [2, 3, 4, 4, 3, 2, 2];

/// Plaintext multiplications (coefficient applications) per EvalMod.
const EVAL_MOD_PT_MULTS: usize = 20;

/// Ciphertext additions per EvalMod.
const EVAL_MOD_ADDS: usize = 40;

/// The six phases of the bootstrapping pipeline, in execution order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BootstrapPhase {
    /// Reinterpreting the exhausted ciphertext over the full chain.
    ModRaise,
    /// The homomorphic inverse DFT (`fftIter` matrix products).
    CoeffToSlot,
    /// Conjugation-based real/imaginary separation.
    Split,
    /// The scaled-sine approximate modular reduction (both halves).
    EvalMod,
    /// Reassembling `real + i·imag`.
    Recombine,
    /// The homomorphic forward DFT.
    SlotToCoeff,
}

impl BootstrapPhase {
    /// All phases in execution order.
    pub const ALL: [BootstrapPhase; 6] = [
        BootstrapPhase::ModRaise,
        BootstrapPhase::CoeffToSlot,
        BootstrapPhase::Split,
        BootstrapPhase::EvalMod,
        BootstrapPhase::Recombine,
        BootstrapPhase::SlotToCoeff,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            BootstrapPhase::ModRaise => "ModRaise",
            BootstrapPhase::CoeffToSlot => "CoeffToSlot",
            BootstrapPhase::Split => "Split",
            BootstrapPhase::EvalMod => "EvalMod",
            BootstrapPhase::Recombine => "Recombine",
            BootstrapPhase::SlotToCoeff => "SlotToCoeff",
        }
    }
}

/// Outcome of simulating one bootstrapping operation.
#[derive(Clone, Copy, Debug)]
pub struct BootstrapCost {
    /// Total compute and DRAM cost.
    pub cost: Cost,
    /// Per-phase cost, indexed by [`BootstrapPhase::ALL`] order.
    pub phases: [Cost; 6],
    /// Limb-wise ↔ slot-wise orientation switches.
    pub orientation_switches: u64,
    /// Limbs consumed by the pipeline.
    pub levels_consumed: usize,
    /// Limbs remaining in the output ciphertext.
    pub output_limbs: usize,
    /// `log2 Q_1`: modulus bits immediately after bootstrapping
    /// (Table 6's column).
    pub log_q1: u32,
}

/// Splits `count` FFT stages into `groups` chunks, as evenly as possible
/// (larger chunks first) — the factorization of the homomorphic DFT.
pub fn chunk_stages(count: usize, groups: usize) -> Vec<usize> {
    let groups = groups.min(count).max(1);
    let base = count / groups;
    let extra = count % groups;
    (0..groups).map(|g| base + usize::from(g < extra)).collect()
}

impl CostModel {
    /// Diagonal count of a grouped DFT matrix covering `stages` butterfly
    /// stages: `2^{stages+1} − 1` generalized diagonals.
    pub fn dft_group_diagonals(&self, stages: usize) -> usize {
        (1usize << (stages + 1)) - 1
    }

    /// `ModRaise`: read the exhausted ciphertext (`in_limbs` limbs per
    /// polynomial), extend to the full `L`-limb chain, NTT everything.
    pub fn mod_raise(&self, in_limbs: usize) -> Cost {
        let l = self.params.limbs;
        let new = l - in_limbs;
        let mut c = self.ntt_limb_ops() * (2 * in_limbs) as u64; // iNTT both polys
        c += self.newlimb_ops(in_limbs, new) * 2;
        c += self.ntt_limb_ops() * (2 * l) as u64; // NTT the full chain
        let limb = self.params.limb_bytes();
        c.ct_read += 2 * in_limbs as u64 * limb;
        c.ct_write += 2 * l as u64 * limb;
        c
    }

    /// Simulates one full bootstrap, starting from an exhausted ciphertext
    /// of `in_limbs` limbs.
    ///
    /// # Panics
    ///
    /// Panics if the parameter set is too shallow for the pipeline.
    pub fn bootstrap_from(&self, in_limbs: usize) -> BootstrapCost {
        self.bootstrap_sparse(in_limbs, (self.params.log_n - 1) as usize)
    }

    /// Simulates a *sparsely packed* bootstrap over `2^log_slots` slots
    /// (≤ `N/2`). The paper's §4.3 notes that the applications use
    /// bootstrapping with fewer slots than the fully packed throughput
    /// benchmark: the homomorphic DFT then has `log_slots` butterfly
    /// stages instead of `log₂(N/2)`, shrinking every grouped matrix.
    ///
    /// # Panics
    ///
    /// Panics if the parameter set is too shallow for the pipeline or
    /// `log_slots` exceeds `log₂(N/2)`.
    pub fn bootstrap_sparse(&self, in_limbs: usize, log_slots: usize) -> BootstrapCost {
        let p = self.params;
        assert!(
            log_slots >= 1 && log_slots <= (p.log_n - 1) as usize,
            "log_slots {log_slots} outside [1, {}]",
            p.log_n - 1
        );
        let consumed = 2 * p.fft_iter + 2 + EVAL_MOD_DEPTH;
        assert!(
            p.limbs > consumed,
            "L = {} cannot cover the bootstrap depth {consumed}",
            p.limbs
        );

        let mut phases = [Cost::ZERO; 6];
        phases[0] = self.mod_raise(in_limbs);
        let mut switches = 1u64; // the raise is itself an orientation pass
        let mut ell = p.limbs;

        // CoeffToSlot: fftIter grouped DFT matrices.
        for &stages in &chunk_stages(log_slots, p.fft_iter) {
            let mv = self.pt_mat_vec_mult(MatVecShape {
                ell,
                diagonals: self.dft_group_diagonals(stages),
            });
            phases[1] += mv.cost;
            switches += mv.orientation_switches;
            ell -= 1;
        }

        // Real/imaginary split: one Conjugate (a Rotate-shaped key
        // switch), two additions, two scalar passes, one level.
        phases[2] += self.rotate(ell);
        switches += p.beta_at(ell) as u64 + 2;
        phases[2] += self.add(ell) * 2;
        phases[2] += Cost::compute(4 * p.degree() * ell as u64, 0);
        phases[2] += self.rescale(ell);
        ell -= 1;

        // EvalMod on both the real and imaginary ciphertexts.
        for _ in 0..2 {
            let mut e = ell;
            for &mults in &EVAL_MOD_MULTS_PER_LEVEL {
                for _ in 0..mults {
                    phases[3] += self.mult(e);
                    switches += p.beta_at(e) as u64 + 2;
                }
                e -= 1;
            }
            // Coefficient applications and additions fuse into the Mult
            // pipeline: compute plus a compact read of the scalar
            // coefficients, no ciphertext round-trips.
            let mid = (ell - 3) as u64;
            phases[3] += Cost {
                mults: 2 * p.degree() * mid * EVAL_MOD_PT_MULTS as u64,
                adds: 2 * p.degree() * mid * EVAL_MOD_ADDS as u64,
                pt_read: EVAL_MOD_PT_MULTS as u64 * 2 * p.limb_bytes(),
                ..Cost::ZERO
            };
        }
        ell -= EVAL_MOD_DEPTH;

        // Recombination (multiply by i, add): one level.
        phases[4] += Cost::compute(4 * p.degree() * ell as u64, 2 * p.degree() * ell as u64);
        phases[4] += self.rescale(ell);
        ell -= 1;

        // SlotToCoeff.
        for &stages in &chunk_stages(log_slots, p.fft_iter) {
            let mv = self.pt_mat_vec_mult(MatVecShape {
                ell,
                diagonals: self.dft_group_diagonals(stages),
            });
            phases[5] += mv.cost;
            switches += mv.orientation_switches;
            ell -= 1;
        }

        debug_assert_eq!(ell, p.limbs - consumed);
        let cost: Cost = phases.iter().copied().sum();
        BootstrapCost {
            cost,
            phases,
            orientation_switches: switches,
            levels_consumed: consumed,
            output_limbs: ell,
            log_q1: (ell as u32) * p.log_q,
        }
    }

    /// Simulates one bootstrap from the conventional 2-limb entry point.
    pub fn bootstrap(&self) -> BootstrapCost {
        self.bootstrap_from(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opts::{AlgoOpts, CachingLevel, MadConfig};
    use crate::params::SchemeParams;

    #[test]
    fn level_schedule_matches_published_log_q1() {
        // GPU baseline: (35 − 15) · 54 = 1080 (Table 6 row 1).
        let base = CostModel::new(SchemeParams::baseline(), MadConfig::baseline());
        let b = base.bootstrap();
        assert_eq!(b.levels_consumed, 15);
        assert_eq!(b.log_q1, 1080);
        // MAD optimal: (40 − 21) · 50 = 950 (Table 6 MAD rows).
        let mad = CostModel::new(SchemeParams::mad_optimal(), MadConfig::all());
        let m = mad.bootstrap();
        assert_eq!(m.levels_consumed, 21);
        assert_eq!(m.log_q1, 950);
    }

    #[test]
    fn table4_bootstrap_row() {
        // Table 4: 149.5 Gops, 208 GB, AI 0.72 at baseline parameters.
        let m = CostModel::new(
            SchemeParams::baseline(),
            MadConfig {
                caching: CachingLevel::OneLimb,
                algo: AlgoOpts {
                    modup_hoist: true,
                    ..AlgoOpts::none()
                },
            },
        );
        let b = m.bootstrap();
        let gops = b.cost.ops() as f64 / 1e9;
        let gbytes = b.cost.dram_total() as f64 / 1e9;
        let ai = b.cost.arithmetic_intensity();
        assert!(
            (gops / 149.546 - 1.0).abs() < 0.30,
            "bootstrap ops {gops:.1} Gops vs paper 149.5"
        );
        assert!(
            (gbytes / 207.982 - 1.0).abs() < 0.30,
            "bootstrap DRAM {gbytes:.1} GB vs paper 208.0"
        );
        assert!(
            (ai / 0.72 - 1.0).abs() < 0.30,
            "bootstrap AI {ai:.2} vs 0.72"
        );
    }

    #[test]
    fn caching_ladder_reduces_ct_traffic_monotonically() {
        let mut last = u64::MAX;
        for lvl in CachingLevel::ALL {
            let m = CostModel::new(
                SchemeParams::baseline(),
                MadConfig {
                    caching: lvl,
                    algo: AlgoOpts {
                        modup_hoist: true,
                        ..AlgoOpts::none()
                    },
                },
            );
            let b = m.bootstrap();
            let ct = b.cost.ct_read + b.cost.ct_write;
            assert!(ct < last, "{lvl} did not reduce ciphertext traffic");
            last = ct;
        }
    }

    #[test]
    fn caching_leaves_key_reads_unchanged() {
        // §3.1: "the caching optimizations do not impact the switching key
        // reads".
        let key_reads: Vec<u64> = CachingLevel::ALL
            .iter()
            .map(|&lvl| {
                CostModel::new(
                    SchemeParams::baseline(),
                    MadConfig {
                        caching: lvl,
                        algo: AlgoOpts {
                            modup_hoist: true,
                            ..AlgoOpts::none()
                        },
                    },
                )
                .bootstrap()
                .cost
                .key_read
            })
            .collect();
        for k in &key_reads {
            assert_eq!(*k, key_reads[0]);
        }
    }

    #[test]
    fn mad_orientation_switches_per_phase() {
        // §3.2: with ModUp + ModDown hoisting, each PtMatVecMult needs
        // β + 2 switches; a phase of fftIter iterations needs ≈ fftIter·3
        // at dnum = 2 (β = 2 ⟹ β + 2 ≈ ... the paper's "fftIter × 3").
        let m = CostModel::new(SchemeParams::mad_optimal(), MadConfig::all());
        let shape = MatVecShape {
            ell: 40,
            diagonals: 15,
        };
        let mv = m.pt_mat_vec_mult(shape);
        assert_eq!(mv.orientation_switches, m.params.beta_at(40) as u64 + 2);
    }

    #[test]
    fn stage_chunking() {
        assert_eq!(chunk_stages(16, 3), vec![6, 5, 5]);
        assert_eq!(chunk_stages(16, 6), vec![3, 3, 3, 3, 2, 2]);
        assert_eq!(chunk_stages(16, 1), vec![16]);
    }

    #[test]
    fn sparse_packing_is_cheaper_than_full() {
        let m = CostModel::new(SchemeParams::baseline(), MadConfig::all());
        let full = m.bootstrap_sparse(2, 16);
        let sparse = m.bootstrap_sparse(2, 8);
        assert!(sparse.cost.ops() < full.cost.ops());
        assert!(sparse.cost.dram_total() < full.cost.dram_total());
        // Level consumption is identical — the DFT still runs fftIter
        // iterations per phase, each matrix is just smaller.
        assert_eq!(sparse.levels_consumed, full.levels_consumed);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn sparse_packing_validates_slot_count() {
        let m = CostModel::new(SchemeParams::baseline(), MadConfig::all());
        let _ = m.bootstrap_sparse(2, 17);
    }

    #[test]
    fn phase_costs_sum_to_total() {
        let b = CostModel::new(SchemeParams::baseline(), MadConfig::baseline()).bootstrap();
        let sum: crate::cost::Cost = b.phases.iter().copied().sum();
        assert_eq!(sum, b.cost);
        for (phase, c) in BootstrapPhase::ALL.iter().zip(&b.phases) {
            assert!(c.ops() > 0, "{} has zero compute", phase.name());
        }
    }

    #[test]
    fn linear_phases_dominate_dram_at_baseline() {
        // §4.2 context: the homomorphic DFTs are the memory hogs.
        let b = CostModel::new(SchemeParams::baseline(), MadConfig::baseline()).bootstrap();
        let dft = b.phases[1].dram_total() + b.phases[5].dram_total();
        assert!(
            dft * 2 > b.cost.dram_total(),
            "CoeffToSlot+SlotToCoeff should be >50% of DRAM traffic"
        );
    }

    #[test]
    #[should_panic(expected = "cannot cover")]
    fn too_shallow_chain_panics() {
        let p = SchemeParams {
            limbs: 10,
            ..SchemeParams::baseline()
        };
        let _ = CostModel::new(p, MadConfig::baseline()).bootstrap();
    }
}
