//! The bootstrapping-throughput metric (Eq. 3, from Han–Ki) and the
//! published Table-6 reference points.
//!
//! `throughput = n · log Q₁ · bp / brt` — slots refreshed, times the
//! modulus bits (levels) they come back with, times the bit precision,
//! per unit time. Table 6 prints this in units of 10⁷/s.

use crate::bootstrap::BootstrapCost;
use crate::hardware::HardwareConfig;
use crate::opts::{CachingLevel, MadConfig};
use crate::params::SchemeParams;
use crate::primitives::CostModel;

/// Bit precision assumed by the paper for all works except F1 (which
/// achieves 24).
pub const DEFAULT_BIT_PRECISION: u32 = 19;

/// Raw Eq.-3 throughput in (slot·bit·bit)/second.
pub fn bootstrap_throughput(slots: u64, log_q1: u32, bit_precision: u32, runtime_s: f64) -> f64 {
    slots as f64 * log_q1 as f64 * bit_precision as f64 / runtime_s
}

/// Eq.-3 throughput in Table 6's display units (10⁷/s).
pub fn bootstrap_throughput_display(
    slots: u64,
    log_q1: u32,
    bit_precision: u32,
    runtime_s: f64,
) -> f64 {
    bootstrap_throughput(slots, log_q1, bit_precision, runtime_s) / 1e7
}

/// A published design point from Table 6 (the authors' reported numbers).
#[derive(Clone, Copy, Debug)]
pub struct PublishedDesign {
    /// Design name.
    pub name: &'static str,
    /// `(log N, log q)`.
    pub log_n: u32,
    /// Limb bit width.
    pub log_q: u32,
    /// Bootstrapping slot count `n`.
    pub slots: u64,
    /// `log Q₁` after bootstrapping.
    pub log_q1: u32,
    /// Bit precision.
    pub bit_precision: u32,
    /// Published bootstrapping runtime in milliseconds.
    pub bootstrap_ms: f64,
}

impl PublishedDesign {
    /// Table 6's published rows.
    pub fn table6() -> [PublishedDesign; 5] {
        [
            PublishedDesign {
                name: "GPU",
                log_n: 17,
                log_q: 54,
                slots: 1 << 16,
                log_q1: 1080,
                bit_precision: 19,
                bootstrap_ms: 328.7,
            },
            PublishedDesign {
                name: "F1",
                log_n: 14,
                log_q: 32,
                slots: 1,
                log_q1: 416,
                bit_precision: 24,
                bootstrap_ms: 1.3,
            },
            PublishedDesign {
                name: "BTS",
                log_n: 17,
                log_q: 50,
                slots: 1 << 16,
                log_q1: 1080,
                bit_precision: 19,
                bootstrap_ms: 50.43,
            },
            PublishedDesign {
                name: "ARK",
                log_n: 16,
                log_q: 54,
                slots: 1 << 15,
                log_q1: 432,
                bit_precision: 19,
                bootstrap_ms: 3.9,
            },
            PublishedDesign {
                name: "CraterLake",
                log_n: 17,
                log_q: 28,
                slots: 1 << 16,
                log_q1: 532,
                bit_precision: 19,
                bootstrap_ms: 6.33,
            },
        ]
    }

    /// The published throughput in display units.
    pub fn throughput_display(&self) -> f64 {
        bootstrap_throughput_display(
            self.slots,
            self.log_q1,
            self.bit_precision,
            self.bootstrap_ms / 1e3,
        )
    }
}

/// Outcome of running MAD bootstrapping on a hardware design.
#[derive(Clone, Copy, Debug)]
pub struct MadRun {
    /// The parameter set used.
    pub params: SchemeParams,
    /// The MAD configuration (caching auto-selected from the cache size).
    pub config: MadConfig,
    /// Bootstrapping cost details.
    pub bootstrap: BootstrapCost,
    /// Runtime in milliseconds on the given design.
    pub runtime_ms: f64,
    /// Whether the run is memory-bound on that design.
    pub memory_bound: bool,
    /// Throughput in Table-6 display units.
    pub throughput_display: f64,
}

/// Runs MAD bootstrapping (all algorithmic optimizations, caching level
/// auto-selected from the design's on-chip memory — §4.1's "SimFHE will
/// automatically deploy the applicable optimization") on a hardware
/// design.
pub fn run_mad_bootstrap(params: SchemeParams, hw: &HardwareConfig) -> MadRun {
    let limb_mb = params.limb_mib();
    let caching = CachingLevel::best_for_cache(
        hw.on_chip_mb,
        params.alpha(),
        params.beta_at(params.limbs),
        limb_mb,
    );
    let config = MadConfig {
        caching,
        algo: crate::opts::AlgoOpts::all(),
    };
    let model = CostModel::new(params, config);
    let b = model.bootstrap();
    let runtime_s = hw.runtime_seconds(&b.cost);
    MadRun {
        params,
        config,
        bootstrap: b,
        runtime_ms: runtime_s * 1e3,
        memory_bound: hw.is_memory_bound(&b.cost),
        throughput_display: bootstrap_throughput_display(
            params.slots(),
            b.log_q1,
            DEFAULT_BIT_PRECISION,
            runtime_s,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_throughputs_match_table6() {
        // Table 6's own throughput column must be reproducible from its
        // runtime column via Eq. 3. (F1's printed 1.5 is not exactly
        // derivable from its printed runtime — Eq. 3 gives 0.77; we accept
        // the table's rounding of very small values.)
        let rows = PublishedDesign::table6();
        let expected = [409.0, 1.5, 2667.0, 6896.0, 10465.0];
        for (row, want) in rows.iter().zip(expected) {
            let got = row.throughput_display();
            let tol = if row.name == "F1" { 1.0 } else { 0.05 };
            assert!(
                (got / want - 1.0).abs() < tol,
                "{}: computed {got:.0}, table says {want}",
                row.name
            );
        }
    }

    #[test]
    fn eq3_scales_inversely_with_runtime() {
        let fast = bootstrap_throughput(1 << 16, 950, 19, 0.01);
        let slow = bootstrap_throughput(1 << 16, 950, 19, 0.02);
        assert!((fast / slow - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mad_run_uses_strongest_caching_at_32mb() {
        // With α = 12 (baseline-shaped dnum = 3), the 2α + 3 = 27 MB
        // requirement fits in 32 MB and the full ladder engages.
        let run = run_mad_bootstrap(
            SchemeParams::baseline(),
            &HardwareConfig::gpu().with_cache_mb(32.0),
        );
        assert_eq!(run.config.caching, CachingLevel::LimbReorder);
        assert!(run.runtime_ms > 0.0);
        // With dnum = 2 (α = 21 → 45 MB), 32 MB only affords β-limb
        // caching; the auto-selection must degrade rather than cheat.
        let run2 = run_mad_bootstrap(
            SchemeParams::mad_optimal(),
            &HardwareConfig::gpu().with_cache_mb(32.0),
        );
        assert_eq!(run2.config.caching, CachingLevel::BetaLimbs);
    }

    #[test]
    fn mad_run_degrades_gracefully_with_tiny_cache() {
        let big = run_mad_bootstrap(
            SchemeParams::mad_optimal(),
            &HardwareConfig::gpu().with_cache_mb(32.0),
        );
        let small = run_mad_bootstrap(
            SchemeParams::mad_optimal(),
            &HardwareConfig::gpu().with_cache_mb(2.0),
        );
        assert!(small.runtime_ms > big.runtime_ms);
    }
}
