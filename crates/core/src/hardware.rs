//! Hardware design points: the five accelerators the paper compares
//! against (Table 6) and a roofline runtime model.
//!
//! The paper's methodology (§4.2): "we estimate the compute latency by
//! using the total number of operations, an operating frequency of 1 GHz,
//! and by accounting for the number of operations that can be done in
//! parallel (using the modular multiplier count); … we determine the
//! memory access latency using the memory bandwidth of the corresponding
//! related work." Runtime is the maximum of the two (perfectly overlapped
//! roofline).

use crate::cost::Cost;
use std::fmt;

/// A hardware design point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HardwareConfig {
    /// Display name.
    pub name: &'static str,
    /// On-chip memory in MB.
    pub on_chip_mb: f64,
    /// Main-memory bandwidth in GB/s.
    pub bandwidth_gbps: f64,
    /// Modular multiplier count (parallel lanes).
    pub modmult_count: u64,
    /// Clock frequency in GHz.
    pub freq_ghz: f64,
    /// Average multiplier-cycles per modular operation. The GPU figure of
    /// Table 6 (2250 lanes) is an *effective-throughput* number, so 1.0;
    /// the ASIC figures count raw multipliers, and back-solving the
    /// paper's own compute-bound MAD runtimes (BTS 76.2 ms at 8192 lanes,
    /// ARK 36.58 ms at 20480, CraterLake 52.2 ms at 14336) gives a
    /// consistent ≈8 cycles per modular op (Barrett multiply ≈ 3 integer
    /// multiplies plus pipeline/utilization overhead).
    pub cycles_per_op: f64,
}

/// The calibrated ASIC pipeline factor (see [`HardwareConfig::cycles_per_op`]).
pub const ASIC_CYCLES_PER_OP: f64 = 8.0;

impl HardwareConfig {
    /// The GPU design of Jung et al. \[20\] as modeled for MAD comparisons:
    /// 2250 modular multipliers at 1 GHz, 900 GB/s (Table 6).
    pub fn gpu() -> Self {
        Self {
            name: "GPU",
            on_chip_mb: 6.0,
            bandwidth_gbps: 900.0,
            modmult_count: 2250,
            freq_ghz: 1.0,
            cycles_per_op: 1.0,
        }
    }

    /// F1 \[30\]: 18432 multipliers, 64 MB, 1 TB/s.
    pub fn f1() -> Self {
        Self {
            name: "F1",
            on_chip_mb: 64.0,
            bandwidth_gbps: 1000.0,
            modmult_count: 18432,
            freq_ghz: 1.0,
            cycles_per_op: ASIC_CYCLES_PER_OP,
        }
    }

    /// BTS-2 \[25\]: 8192 multipliers, 512 MB, 1 TB/s.
    pub fn bts() -> Self {
        Self {
            name: "BTS",
            on_chip_mb: 512.0,
            bandwidth_gbps: 1000.0,
            modmult_count: 8192,
            freq_ghz: 1.0,
            cycles_per_op: ASIC_CYCLES_PER_OP,
        }
    }

    /// ARK \[24\]: 20480 multipliers, 512 MB, 1 TB/s.
    pub fn ark() -> Self {
        Self {
            name: "ARK",
            on_chip_mb: 512.0,
            bandwidth_gbps: 1000.0,
            modmult_count: 20480,
            freq_ghz: 1.0,
            cycles_per_op: ASIC_CYCLES_PER_OP,
        }
    }

    /// CraterLake \[31\]: 14336 multipliers, 256 MB, 2.4 TB/s.
    pub fn craterlake() -> Self {
        Self {
            name: "CraterLake",
            on_chip_mb: 256.0,
            bandwidth_gbps: 2400.0,
            modmult_count: 14336,
            freq_ghz: 1.0,
            cycles_per_op: ASIC_CYCLES_PER_OP,
        }
    }

    /// All five design points, in Table 6 order.
    pub fn all_designs() -> [HardwareConfig; 5] {
        [
            Self::gpu(),
            Self::f1(),
            Self::bts(),
            Self::ark(),
            Self::craterlake(),
        ]
    }

    /// A copy of this design with a different on-chip memory size (the
    /// "+MAD-32" style configurations of Figure 6).
    pub fn with_cache_mb(&self, mb: f64) -> Self {
        Self {
            on_chip_mb: mb,
            ..*self
        }
    }

    /// Compute time for `cost` in seconds: modular ops spread over the
    /// multiplier lanes at the design's clock.
    pub fn compute_seconds(&self, cost: &Cost) -> f64 {
        cost.ops() as f64 * self.cycles_per_op / (self.modmult_count as f64 * self.freq_ghz * 1e9)
    }

    /// Memory time for `cost` in seconds.
    pub fn memory_seconds(&self, cost: &Cost) -> f64 {
        cost.dram_total() as f64 / (self.bandwidth_gbps * 1e9)
    }

    /// Roofline runtime: compute and memory perfectly overlapped.
    pub fn runtime_seconds(&self, cost: &Cost) -> f64 {
        self.compute_seconds(cost).max(self.memory_seconds(cost))
    }

    /// True if `cost` is memory-bound on this design.
    pub fn is_memory_bound(&self, cost: &Cost) -> bool {
        self.memory_seconds(cost) > self.compute_seconds(cost)
    }

    /// The arithmetic intensity (ops/byte) at which this design is
    /// balanced.
    pub fn balance_point(&self) -> f64 {
        self.modmult_count as f64 * self.freq_ghz / (self.cycles_per_op * self.bandwidth_gbps)
    }
}

impl fmt::Display for HardwareConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} mults @ {} GHz, {} MB, {} GB/s)",
            self.name, self.modmult_count, self.freq_ghz, self.on_chip_mb, self.bandwidth_gbps
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table6() {
        assert_eq!(HardwareConfig::gpu().bandwidth_gbps, 900.0);
        assert_eq!(HardwareConfig::f1().modmult_count, 18432);
        assert_eq!(HardwareConfig::bts().on_chip_mb, 512.0);
        assert_eq!(HardwareConfig::ark().modmult_count, 20480);
        assert_eq!(HardwareConfig::craterlake().bandwidth_gbps, 2400.0);
        assert_eq!(HardwareConfig::all_designs().len(), 5);
    }

    #[test]
    fn roofline_takes_the_max() {
        let hw = HardwareConfig::gpu();
        // Memory-heavy cost.
        let mem_heavy = Cost {
            mults: 1,
            ct_read: 900_000_000_000,
            ..Cost::ZERO
        };
        assert!(hw.is_memory_bound(&mem_heavy));
        assert!((hw.runtime_seconds(&mem_heavy) - 1.0).abs() < 1e-9);
        // Compute-heavy cost.
        let cpu_heavy = Cost {
            mults: 2250 * 1_000_000_000,
            ct_read: 8,
            ..Cost::ZERO
        };
        assert!(!hw.is_memory_bound(&cpu_heavy));
        assert!((hw.runtime_seconds(&cpu_heavy) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cache_override() {
        let hw = HardwareConfig::bts().with_cache_mb(32.0);
        assert_eq!(hw.on_chip_mb, 32.0);
        assert_eq!(hw.modmult_count, HardwareConfig::bts().modmult_count);
    }

    #[test]
    fn balance_points_are_ordered_sensibly() {
        // ARK has the most compute per byte of bandwidth.
        let designs = HardwareConfig::all_designs();
        let ark = designs[3].balance_point();
        let gpu = designs[0].balance_point();
        assert!(ark > gpu);
    }
}
