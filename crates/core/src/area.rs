//! Performance vs. area/cost trade-offs (§4.4 of the paper).
//!
//! The paper's §4.4 argument is quantified here: a large on-chip memory
//! dominates accelerator die area, so cutting the cache from 256–512 MB
//! to 32 MB "proportionally reduces the cost of the solution". We model
//! die area as SRAM area plus modular-multiplier logic area, with
//! technology-node densities cited from the public literature as rough
//! constants (they only need to be right to first order — the comparison
//! is between configurations sharing the same node).

use crate::hardware::HardwareConfig;
use std::fmt;

/// A silicon technology node's density assumptions.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AreaModel {
    /// Node label.
    pub node: &'static str,
    /// SRAM area in mm² per MB (7 nm high-density SRAM macros land around
    /// 0.3–0.45 mm²/MB including overheads; we use the middle).
    pub sram_mm2_per_mb: f64,
    /// Logic area per modular multiplier in mm² (a pipelined 64-bit
    /// modular multiplier plus its share of interconnect).
    pub logic_mm2_per_modmult: f64,
}

impl AreaModel {
    /// The 7 nm node used by BTS/ARK/CraterLake.
    pub fn n7() -> Self {
        Self {
            node: "7nm",
            sram_mm2_per_mb: 0.4,
            logic_mm2_per_modmult: 0.0015,
        }
    }

    /// A mature 14/12 nm node (the cost-conscious alternative the paper's
    /// introduction motivates: "to accommodate this large 512 MB memory
    /// on-chip, one needs … the 7 nm, which is prohibitively expensive").
    pub fn n14() -> Self {
        Self {
            node: "14nm",
            sram_mm2_per_mb: 1.1,
            logic_mm2_per_modmult: 0.0045,
        }
    }

    /// SRAM area of `mb` megabytes.
    pub fn memory_mm2(&self, mb: f64) -> f64 {
        self.sram_mm2_per_mb * mb
    }

    /// Logic area of `count` modular multipliers.
    pub fn logic_mm2(&self, count: u64) -> f64 {
        self.logic_mm2_per_modmult * count as f64
    }

    /// Total die-area estimate for a design.
    pub fn die_mm2(&self, hw: &HardwareConfig) -> f64 {
        self.memory_mm2(hw.on_chip_mb) + self.logic_mm2(hw.modmult_count)
    }

    /// Fraction of the die devoted to on-chip memory.
    pub fn memory_fraction(&self, hw: &HardwareConfig) -> f64 {
        self.memory_mm2(hw.on_chip_mb) / self.die_mm2(hw)
    }

    /// Relative die cost. Cost grows super-linearly with area because
    /// yield drops with defect exposure; the standard first-order model is
    /// cost ∝ area / yield with yield ≈ (1 + A·D/α)^{-α}. We expose the
    /// classic negative-binomial form with defect density `d0` per mm².
    pub fn relative_cost(&self, hw: &HardwareConfig, d0_per_mm2: f64) -> f64 {
        let area = self.die_mm2(hw);
        let alpha = 3.0;
        let yield_ = (1.0 + area * d0_per_mm2 / alpha).powf(-alpha);
        area / yield_
    }
}

impl fmt::Display for AreaModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.node)
    }
}

/// One row of the §4.4 trade-off analysis.
#[derive(Clone, Debug)]
pub struct TradeoffRow {
    /// Configuration label.
    pub label: String,
    /// Cache size in MB.
    pub cache_mb: f64,
    /// Estimated die area in mm².
    pub die_mm2: f64,
    /// Fraction of area that is memory.
    pub memory_fraction: f64,
    /// Relative manufacturing cost (area/yield).
    pub relative_cost: f64,
    /// Bootstrapping throughput (Eq.-3 display units).
    pub throughput: f64,
    /// Throughput per relative cost — the "win-win" metric.
    pub throughput_per_cost: f64,
}

/// Builds the §4.4 trade-off comparison for one design: the original
/// cache size vs MAD's 32 MB, at the given node and defect density.
pub fn tradeoff_rows(
    hw: &HardwareConfig,
    model: &AreaModel,
    d0_per_mm2: f64,
    throughputs: &[(f64, f64)],
) -> Vec<TradeoffRow> {
    throughputs
        .iter()
        .map(|&(cache_mb, throughput)| {
            let cfg = hw.with_cache_mb(cache_mb);
            let die = model.die_mm2(&cfg);
            let cost = model.relative_cost(&cfg, d0_per_mm2);
            TradeoffRow {
                label: format!("{}-{}", hw.name, cache_mb as u64),
                cache_mb,
                die_mm2: die,
                memory_fraction: model.memory_fraction(&cfg),
                relative_cost: cost,
                throughput,
                throughput_per_cost: throughput / cost,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_dominates_large_cache_asics() {
        // §4.4: "a large on-chip memory results in a large chip area".
        let m = AreaModel::n7();
        for hw in [HardwareConfig::bts(), HardwareConfig::ark()] {
            assert!(
                m.memory_fraction(&hw) > 0.85,
                "{}: memory fraction {:.2}",
                hw.name,
                m.memory_fraction(&hw)
            );
        }
        // At 32 MB the logic matters again.
        let small = HardwareConfig::ark().with_cache_mb(32.0);
        assert!(m.memory_fraction(&small) < 0.5);
    }

    #[test]
    fn cache_cut_shrinks_area_roughly_proportionally() {
        // 512 → 32 MB is the paper's 16× memory reduction; die area drops
        // by ≈ the memory share.
        let m = AreaModel::n7();
        let big = m.die_mm2(&HardwareConfig::bts());
        let small = m.die_mm2(&HardwareConfig::bts().with_cache_mb(32.0));
        assert!(big / small > 5.0, "area ratio {:.1}", big / small);
    }

    #[test]
    fn yield_model_superlinear_in_area() {
        let m = AreaModel::n7();
        let d0 = 0.001;
        let big = m.relative_cost(&HardwareConfig::bts(), d0);
        let small = m.relative_cost(&HardwareConfig::bts().with_cache_mb(32.0), d0);
        let area_ratio = m.die_mm2(&HardwareConfig::bts())
            / m.die_mm2(&HardwareConfig::bts().with_cache_mb(32.0));
        assert!(
            big / small > area_ratio,
            "cost ratio {:.1} must exceed area ratio {:.1}",
            big / small,
            area_ratio
        );
    }

    #[test]
    fn older_node_is_denser_in_cost_not_area() {
        let n7 = AreaModel::n7();
        let n14 = AreaModel::n14();
        let hw = HardwareConfig::craterlake().with_cache_mb(32.0);
        assert!(n14.die_mm2(&hw) > n7.die_mm2(&hw));
    }

    #[test]
    fn tradeoff_rows_compute_win_win_metric() {
        let hw = HardwareConfig::bts();
        let rows = tradeoff_rows(
            &hw,
            &AreaModel::n7(),
            0.001,
            &[(512.0, 2667.0), (32.0, 1431.0)],
        );
        assert_eq!(rows.len(), 2);
        // MAD at 32 MB loses raw throughput but wins throughput/cost.
        assert!(rows[1].throughput < rows[0].throughput);
        assert!(
            rows[1].throughput_per_cost > rows[0].throughput_per_cost,
            "32 MB should win per cost: {:.2} vs {:.2}",
            rows[1].throughput_per_cost,
            rows[0].throughput_per_cost
        );
    }
}
