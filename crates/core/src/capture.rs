//! Memory-trace capture: runs every Table-2 primitive in the functional
//! `ckks` crate with the telemetry trace recorder active, replays the
//! recorded limb touches through [`crate::trace`]'s cache simulator, and
//! diffs the measured DRAM bytes against the analytical model — the
//! DRAM-side counterpart of the op-count validator (`validate` binary).
//!
//! The parameter point matches the op-count validator (`N = 2^6`, `L = 5`,
//! `dnum = 2`) so the two crates' digit geometries coincide. Gating
//! replays through a small on-chip cache ([`default_gate_config`]) and
//! compares against the model at `OneLimb` caching: the implementation's
//! kernels are exactly the model's fused limb passes, so a cache that
//! holds a few operands between consecutive passes reproduces the same
//! traffic structure. Residual deviations (scratch-buffer reuse, the
//! model's plaintext reads folded into `ct_read` for `PtAdd`, on-the-fly
//! encodes in the BSGS and micro kernels) are absorbed by the committed
//! per-primitive tolerances in `crates/core/trace-tolerances.txt` and
//! documented in `DESIGN.md` §5.

use crate::matvec::MatVecShape;
use crate::trace::{
    chrome_trace_json, replay, split_top_level, sweep_table, CacheConfig, SweepRow, TraceEvent,
};
use crate::validate::{MetricCheck, PrimitiveCheck, Tolerances, ValidationReport};
use crate::{AlgoOpts, CachingLevel, Cost, CostModel, HardwareConfig, MadConfig, SchemeParams};
use ckks::hoisting::{apply_bsgs, LinearTransform};
use ckks::{CkksContext, CkksParams, Encoder, Encryptor, Evaluator, KeyGenerator};
use fhe_math::cfft::Complex;
use fhe_math::telemetry;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Reduced parameter set, identical to the op-count validator.
pub const LOG_N: u32 = 6;
/// Limb count `L`.
pub const LEVELS: usize = 5;
/// Decomposition number.
pub const DNUM: usize = 2;

/// One limb at these parameters: `8·N` bytes. Touches are limb-aligned,
/// so limb-sized cache blocks never split a touch.
pub const LIMB_BYTES: u64 = 8 * (1u64 << LOG_N);

/// Committed gate capacity: eight limbs. Large enough that back-to-back
/// kernel passes over the same operand hit (the model's `OneLimb` fusion),
/// small enough that distinct operands evict each other (the model's
/// per-pass streaming).
pub const GATE_CACHE_BYTES: u64 = 8 * LIMB_BYTES;

/// Tolerances committed next to this crate.
pub const DEFAULT_TOLERANCES: &str = include_str!("../trace-tolerances.txt");

/// The committed replay configuration the CI gate runs.
pub fn default_gate_config() -> CacheConfig {
    CacheConfig::pin_keys(GATE_CACHE_BYTES, LIMB_BYTES)
}

fn scheme_params() -> SchemeParams {
    SchemeParams {
        log_n: LOG_N,
        log_q: 30,
        limbs: LEVELS,
        dnum: DNUM,
        fft_iter: 1,
    }
}

fn model(moddown_merge: bool) -> CostModel {
    CostModel::new(
        scheme_params(),
        MadConfig {
            caching: CachingLevel::OneLimb,
            algo: AlgoOpts {
                modup_hoist: true,
                moddown_merge,
                ..AlgoOpts::none()
            },
        },
    )
}

/// A banded slot matrix with the given nonzero diagonals (mirrors the
/// op-count validator's construction).
fn banded_transform(slots: usize, diagonals: &[usize]) -> LinearTransform {
    let mut map = std::collections::BTreeMap::new();
    for &d in diagonals {
        let diag: Vec<Complex> = (0..slots)
            .map(|j| {
                Complex::new(
                    0.08 + ((j * 5 + d * 3) % 7) as f64 * 0.03,
                    ((j + 2 * d) % 5) as f64 * 0.02 - 0.04,
                )
            })
            .collect();
        map.insert(d, diag);
    }
    LinearTransform::from_diagonals(map, slots)
}

/// Runs the primitive schedule under the trace recorder and returns the
/// recorded events. Setup (key generation, input encryption) happens
/// before recording starts; each primitive runs inside a top-level span
/// named after it, so [`split_top_level`] recovers per-primitive traces.
pub fn capture_trace() -> Vec<TraceEvent> {
    let ctx = CkksContext::new(
        CkksParams::builder()
            .log_degree(LOG_N)
            .levels(LEVELS)
            .scale_bits(30)
            .first_modulus_bits(36)
            .special_modulus_bits(36)
            .dnum(DNUM)
            .build()
            .expect("reduced trace parameters are valid"),
    );
    let encoder = Encoder::new(ctx.clone());
    let encryptor = Encryptor::new(ctx.clone());
    let evaluator = Evaluator::new(ctx.clone());
    let keygen = KeyGenerator::new(ctx.clone());
    let mut rng = StdRng::seed_from_u64(7);
    let sk = keygen.secret_key(&mut rng);
    let rlk = keygen.relin_key(&mut rng, &sk);
    let gk = keygen.galois_keys(&mut rng, &sk, &[1, 2, 3, 4, 8], false);
    let pool = ctx.scratch();
    let slots = encoder.slots();
    let scale = ctx.params().scale();

    let vec_a: Vec<Complex> = (0..slots)
        .map(|i| Complex::new(0.02 * i as f64 - 0.3, (i as f64 * 0.4).cos() * 0.2))
        .collect();
    let vec_b: Vec<Complex> = (0..slots)
        .map(|i| Complex::new((i as f64 * 0.3).sin() * 0.25, 0.01 * i as f64))
        .collect();
    let encode_at = |v: &[Complex], ell: usize| encoder.encode(v, ell, scale).expect("encodes");
    let ct_a = encryptor.encrypt_symmetric(&mut rng, &encode_at(&vec_a, LEVELS), &sk);
    let ct_b = encryptor.encrypt_symmetric(&mut rng, &encode_at(&vec_b, LEVELS), &sk);
    let pt_top = encode_at(&vec_b, LEVELS);
    let pt_l3 = encode_at(&vec_b, 3);
    let w_low = evaluator.drop_to(&ct_a, 2);
    let ell = LEVELS;
    let lt3 = banded_transform(slots, &[0, 1, 5]);
    let lt9 = banded_transform(slots, &[0, 1, 2, 3, 4, 5, 6, 7, 8]);
    let m = model(false);
    let n1_3 = m.bsgs_baby_dim(3);
    let n1_9 = m.bsgs_baby_dim(9);

    telemetry::reset();
    telemetry::trace_start();
    {
        let _s = telemetry::span("Add");
        evaluator.add(&ct_a, &ct_b).recycle(pool);
    }
    {
        let _s = telemetry::span("PtAdd");
        evaluator.add_plain(&ct_a, &pt_top).recycle(pool);
    }
    {
        let _s = telemetry::span("PtMult");
        evaluator.mul_plain(&ct_a, &pt_top).recycle(pool);
    }
    {
        let _s = telemetry::span("Rescale");
        evaluator.rescale(&ct_a).recycle(pool);
    }
    {
        let _s = telemetry::span("PModUp");
        let lifted = fhe_math::poly::pmod_up_with(ct_a.c0(), ctx.raised_basis(ell).clone(), pool);
        lifted.recycle(pool);
    }
    {
        let _s = telemetry::span("KeySwitch");
        let (mut v, mut u) = ckks::keyswitch::keyswitch(&ctx, ct_a.c1(), rlk.switching_key());
        // The raw key-switch outputs are live results (an evaluator wraps
        // them into a ciphertext); tag them so the replay flushes them the
        // way the model's `write_output` does.
        v.set_operand_class(fhe_math::telemetry::OperandClass::Ciphertext);
        u.set_operand_class(fhe_math::telemetry::OperandClass::Ciphertext);
        v.recycle(pool);
        u.recycle(pool);
    }
    {
        let _s = telemetry::span("Rotate");
        evaluator.rotate(&ct_a, 1, &gk).recycle(pool);
    }
    {
        let _s = telemetry::span("Mult");
        evaluator.mul(&ct_a, &ct_b, &rlk).recycle(pool);
    }
    {
        let _s = telemetry::span("MultMerged");
        evaluator.mul_merged(&ct_a, &ct_b, &rlk).recycle(pool);
    }
    {
        let _s = telemetry::span("BsgsMatVec");
        apply_bsgs(&evaluator, &encoder, &ct_a, &lt3, &gk, n1_3).recycle(pool);
    }
    {
        let _s = telemetry::span("HelrMicro");
        let prod = evaluator.mul(&ct_a, &ct_b, &rlk);
        let folded = evaluator.sum_slots(&prod, 3, &gk);
        let sq = evaluator.square(&folded, &rlk);
        let act = evaluator.mul_plain(&sq, &pt_l3);
        evaluator.add(&act, &w_low).recycle(pool);
    }
    {
        let _s = telemetry::span("ResNetMicro");
        let y = apply_bsgs(&evaluator, &encoder, &ct_a, &lt9, &gk, n1_9);
        let act = evaluator.square(&y, &rlk);
        let bias = encoder
            .encode(&vec_b, act.limb_count(), act.scale())
            .expect("bias encodes");
        evaluator.add_plain(&act, &bias).recycle(pool);
    }
    crate::trace::from_telemetry(&telemetry::trace_stop())
}

/// The analytical model's per-primitive DRAM cost at the committed gate
/// configuration (`OneLimb` caching, matching the implementation's fused
/// kernel structure).
pub fn modeled_costs() -> Vec<(&'static str, Cost)> {
    let m = model(false);
    let m_merged = model(true);
    let ell = LEVELS;
    let n = m.params.degree();
    let limb = m.params.limb_bytes();
    let k = m.params.special_limbs();

    // PModUp exists precisely to avoid a DRAM round-trip (Algorithm 5):
    // the lifted limbs are consumed on-chip by the following merge, so the
    // model charges reading the ℓ source limbs and no write — which is
    // also what the replay observes (the lifted buffer dies in-cache).
    let _ = k;
    let pmodup = Cost {
        mults: n * ell as u64,
        ct_read: ell as u64 * limb,
        ..Cost::ZERO
    };

    // On-the-fly encodes inside the measured regions (the analytical
    // model assumes pre-encoded operands): each encode materializes one
    // plaintext polynomial of `ell` limbs that later spills and reloads.
    let encode_traffic = |count: u64, ell: usize| Cost {
        ct_write: count * ell as u64 * limb,
        pt_read: count * ell as u64 * limb,
        ..Cost::ZERO
    };

    let shape3 = MatVecShape { ell, diagonals: 3 };
    let shape9 = MatVecShape { ell, diagonals: 9 };
    let bsgs = m.pt_mat_vec_mult(shape3).cost + encode_traffic(3, ell);
    let resnet = m.pt_mat_vec_mult(shape9).cost
        + encode_traffic(9, ell)
        + m.mult(ell - 1)
        + encode_traffic(1, ell - 2)
        + m.pt_add(ell - 2);
    let helr = {
        let mut c = m.mult(ell);
        for _ in 0..3 {
            c += m.rotate(ell - 1);
            c += m.add(ell - 1);
        }
        c += m.mult(ell - 1);
        c += m.pt_mult(ell - 2);
        c += m.add(ell - 3);
        c
    };

    vec![
        ("Add", m.add(ell)),
        ("PtAdd", m.pt_add(ell)),
        ("PtMult", m.pt_mult(ell)),
        ("Rescale", m.rescale(ell)),
        ("PModUp", pmodup),
        ("KeySwitch", m.keyswitch(ell)),
        ("Rotate", m.rotate(ell)),
        ("Mult", m.mult(ell)),
        ("MultMerged", m_merged.mult(ell)),
        ("BsgsMatVec", bsgs),
        ("HelrMicro", helr),
        ("ResNetMicro", resnet),
    ]
}

/// Replays each primitive's trace segment through `cfg` and diffs the
/// measured DRAM bytes against [`modeled_costs`]. Gated metrics:
/// `dram_read`, `dram_write`, `key_read`; the full per-class split is
/// reported informally.
pub fn run_trace_validation(events: &[TraceEvent], cfg: &CacheConfig) -> ValidationReport {
    let segments = split_top_level(events);
    let modeled = modeled_costs();
    let mut report = ValidationReport {
        params: vec![
            ("log_n".into(), LOG_N.to_string()),
            ("limbs".into(), LEVELS.to_string()),
            ("dnum".into(), DNUM.to_string()),
            (
                "cache_bytes".into(),
                cfg.capacity_bytes.map_or("inf".into(), |c| c.to_string()),
            ),
            ("block_bytes".into(), cfg.block_bytes.to_string()),
            ("policy".into(), format!("{:?}", cfg.policy)),
        ],
        primitives: Vec::new(),
    };
    for (name, cost) in modeled {
        let seg = segments
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("no trace segment for primitive {name}"));
        let s = replay(&seg.1, cfg);
        let mut p = PrimitiveCheck::new(name);
        p.metrics.push(MetricCheck {
            metric: "dram_read",
            measured: s.dram_read(),
            modeled: cost.dram_read(),
        });
        p.metrics.push(MetricCheck {
            metric: "dram_write",
            measured: s.dram_write(),
            modeled: cost.ct_write,
        });
        p.metrics.push(MetricCheck {
            metric: "key_read",
            measured: s.key_read_bytes(),
            modeled: cost.key_read,
        });
        p.info.push(MetricCheck {
            metric: "ct_read",
            measured: s.ct_read_bytes(),
            modeled: cost.ct_read,
        });
        p.info.push(MetricCheck {
            metric: "ct_write",
            measured: s.ct_write_bytes(),
            modeled: cost.ct_write,
        });
        p.info.push(MetricCheck {
            metric: "pt_read",
            measured: s.pt_read_bytes(),
            modeled: cost.pt_read,
        });
        p.info.push(MetricCheck {
            metric: "dram_total",
            measured: s.dram_total(),
            modeled: cost.dram_total(),
        });
        report.primitives.push(p);
    }
    report
}

/// Sweeps the cache-replayed DRAM traffic across on-chip sizes against
/// the model at the caching level each size affords — the measured
/// counterpart of the Figure-6 cache-size axis, per Table-2 primitive.
pub fn run_sweep(events: &[TraceEvent]) -> Vec<SweepRow> {
    let segments = split_top_level(events);
    let params = scheme_params();
    let limb_mb = params.limb_mib();
    let (alpha, beta) = (params.alpha(), params.beta_at(LEVELS));
    let ell = LEVELS;
    let sweep_primitives = ["Add", "PtMult", "Rescale", "KeySwitch", "Rotate", "Mult"];
    let mut rows = Vec::new();
    for limbs in [1u64, 2, 4, 8, 16, 32] {
        let hw = HardwareConfig::gpu().with_cache_mb(limbs as f64 * limb_mb);
        let capacity = (hw.on_chip_mb * 1024.0 * 1024.0) as u64;
        let caching = CachingLevel::best_for_cache(hw.on_chip_mb, alpha, beta, limb_mb);
        let m = CostModel::new(
            params,
            MadConfig {
                caching,
                algo: AlgoOpts {
                    modup_hoist: true,
                    ..AlgoOpts::none()
                },
            },
        );
        for name in sweep_primitives {
            let modeled = match name {
                "Add" => m.add(ell),
                "PtMult" => m.pt_mult(ell),
                "Rescale" => m.rescale(ell),
                "KeySwitch" => m.keyswitch(ell),
                "Rotate" => m.rotate(ell),
                "Mult" => m.mult(ell),
                _ => unreachable!(),
            };
            let seg = segments
                .iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("no trace segment for primitive {name}"));
            let measured = replay(&seg.1, &CacheConfig::pin_keys(capacity, LIMB_BYTES));
            rows.push(SweepRow {
                primitive: name.to_string(),
                cache_mb: hw.on_chip_mb,
                caching: caching.to_string(),
                modeled_bytes: modeled.dram_total(),
                measured_bytes: measured.dram_total(),
            });
        }
    }
    rows
}

/// Options of the `simfhe trace` subcommand.
pub struct TraceOptions {
    /// Tolerance file path; `None` uses the committed defaults.
    pub tolerances: Option<String>,
    /// Where to write the Perfetto (Chrome trace-event) JSON.
    pub perfetto_out: String,
    /// Where to write the cache-sweep CSV.
    pub sweep_out: String,
    /// Optional path for the validation JSON (also printed to stdout).
    pub report_out: Option<String>,
}

impl Default for TraceOptions {
    fn default() -> Self {
        Self {
            tolerances: None,
            perfetto_out: "simfhe-trace.json".into(),
            sweep_out: "trace-sweep.csv".into(),
            report_out: None,
        }
    }
}

/// Runs the full trace pipeline: capture, Perfetto export, cache sweep,
/// and tolerance-gated validation. Returns the process exit code.
pub fn run_trace_command(opts: &TraceOptions) -> i32 {
    let tol_text = match &opts.tolerances {
        Some(p) => match std::fs::read_to_string(p) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {p}: {e}");
                return 2;
            }
        },
        None => DEFAULT_TOLERANCES.to_string(),
    };
    let tol = match Tolerances::parse(&tol_text) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bad tolerance file: {e}");
            return 2;
        }
    };

    let events = capture_trace();
    if let Err(e) = std::fs::write(&opts.perfetto_out, chrome_trace_json(&events)) {
        eprintln!("cannot write {}: {e}", opts.perfetto_out);
        return 2;
    }
    eprintln!(
        "trace: wrote {} ({} events) — load in ui.perfetto.dev",
        opts.perfetto_out,
        events.len()
    );
    let sweep = run_sweep(&events);
    if let Err(e) = std::fs::write(&opts.sweep_out, sweep_table(&sweep).to_csv()) {
        eprintln!("cannot write {}: {e}", opts.sweep_out);
        return 2;
    }
    eprintln!(
        "trace: wrote {} ({} sweep rows)",
        opts.sweep_out,
        sweep.len()
    );

    let report = run_trace_validation(&events, &default_gate_config());
    let json = report.to_json(&tol);
    print!("{json}");
    if let Some(p) = &opts.report_out {
        if let Err(e) = std::fs::write(p, &json) {
            eprintln!("cannot write {p}: {e}");
            return 2;
        }
    }
    let violations = report.evaluate(&tol);
    for v in &violations {
        eprintln!("FAIL {}", v.reason);
    }
    if violations.is_empty() {
        eprintln!(
            "trace: all {} primitives within DRAM-byte tolerance",
            report.primitives.len()
        );
        0
    } else {
        eprintln!("trace: {} violation(s)", violations.len());
        1
    }
}
