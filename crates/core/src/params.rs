//! CKKS scheme parameters as the simulator sees them (Table 1 of the
//! paper), plus the security constraint that bounds the parameter search.

use std::fmt;

/// Bytes per machine word (all limb coefficients are ≤ 64-bit).
pub const WORD_BYTES: u64 = 8;

/// A CKKS parameter point for cost simulation.
///
/// Unlike the functional library's `CkksParams`, these are *shape*
/// parameters only — no primes are generated. `limbs` is the paper's `L`
/// (ciphertext limb count after the initial `ModUp` in `Bootstrap`; Table 5
/// calls it the "L parameter").
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct SchemeParams {
    /// `log2 N` — polynomial degree exponent (paper: 17).
    pub log_n: u32,
    /// Bit width of one limb prime `q` (paper baseline: 54).
    pub log_q: u32,
    /// Ciphertext limb count `L` at the top of the chain.
    pub limbs: usize,
    /// Key-switching digit count `dnum`.
    pub dnum: usize,
    /// Iterations of `PtMatVecMult` per DFT phase in bootstrapping
    /// (`fftIter`).
    pub fft_iter: usize,
}

impl fmt::Debug for SchemeParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SchemeParams(N=2^{}, logq={}, L={}, dnum={}, fftIter={})",
            self.log_n, self.log_q, self.limbs, self.dnum, self.fft_iter
        )
    }
}

impl SchemeParams {
    /// The paper's baseline parameter set (Table 5, row 1 — Jung et al.).
    pub fn baseline() -> Self {
        Self {
            log_n: 17,
            log_q: 54,
            limbs: 35,
            dnum: 3,
            fft_iter: 3,
        }
    }

    /// The paper's MAD-optimal parameter set (Table 5, row 2).
    pub fn mad_optimal() -> Self {
        Self {
            log_n: 17,
            log_q: 50,
            limbs: 40,
            dnum: 2,
            fft_iter: 6,
        }
    }

    /// The Table-5 optimum adjusted to `dnum = 3`: the paper runs its
    /// `dnum = 2` set in 32 MB, but under this crate's stricter cache
    /// requirement (`2α + 3` limbs for the α-limb optimization, exactly
    /// the formula §3.1 quotes) `dnum = 2` needs 45 MB; `dnum = 3` keeps
    /// `α = 14` (31 MB) so the full caching ladder engages at 32 MB.
    pub fn mad_practical() -> Self {
        Self {
            log_n: 17,
            log_q: 50,
            limbs: 40,
            dnum: 3,
            fft_iter: 6,
        }
    }

    /// Ring degree `N`.
    pub fn degree(&self) -> u64 {
        1u64 << self.log_n
    }

    /// Plaintext slots `n = N/2`.
    pub fn slots(&self) -> u64 {
        self.degree() / 2
    }

    /// Limbs per key-switching digit: `α = ⌈(L+1)/dnum⌉` (paper Table 1).
    pub fn alpha(&self) -> usize {
        (self.limbs + 1).div_ceil(self.dnum)
    }

    /// Special-basis limb count `k = α` (Han–Ki hybrid key switching).
    pub fn special_limbs(&self) -> usize {
        self.alpha()
    }

    /// Digits at limb count `ell`: `β = ⌈(ℓ+1)/α⌉` capped at `dnum`.
    pub fn beta_at(&self, ell: usize) -> usize {
        (ell + 1).div_ceil(self.alpha()).min(self.dnum)
    }

    /// Bytes of one limb of one ring element: `N · 8`.
    pub fn limb_bytes(&self) -> u64 {
        self.degree() * WORD_BYTES
    }

    /// One limb in MiB (exactly 1.0 at `N = 2^17` — the paper's "~1 MB
    /// limb"). Cache sizes throughout are interpreted in MiB so the
    /// paper's `2α + 3 = 27 MB` working set fits its 32 MB budget.
    pub fn limb_mib(&self) -> f64 {
        self.limb_bytes() as f64 / (1u64 << 20) as f64
    }

    /// Bytes of a full ciphertext at limb count `ell`: `2·N·ℓ` words.
    pub fn ciphertext_bytes(&self, ell: usize) -> u64 {
        2 * self.limb_bytes() * ell as u64
    }

    /// Bytes of one switching key (uncompressed): `2 · dnum` polynomials
    /// over `Q ∪ P`.
    pub fn switching_key_bytes(&self) -> u64 {
        2 * self.dnum as u64 * self.limb_bytes() * (self.limbs + self.special_limbs()) as u64
    }

    /// Butterflies in one limb NTT: `(N/2)·log2 N`.
    pub fn ntt_butterflies(&self) -> u64 {
        (self.degree() / 2) * self.log_n as u64
    }

    /// Modular operations (1 mult + 2 adds per butterfly) in one limb NTT.
    pub fn ntt_ops(&self) -> u64 {
        3 * self.ntt_butterflies()
    }

    /// Total modulus bits `log2(QP)` including the special basis.
    pub fn log_qp(&self) -> u32 {
        self.log_q * (self.limbs + self.special_limbs()) as u32
    }

    /// Total ciphertext-modulus bits `log2 Q`.
    pub fn log_q_total(&self) -> u32 {
        self.log_q * self.limbs as u32
    }

    /// True if `log2(QP)` respects the 128-bit-security bound for this
    /// ring degree.
    pub fn is_secure_128(&self) -> bool {
        self.log_qp() <= max_log_qp_128(self.log_n)
    }
}

/// Maximum `log2(QP)` for 128-bit security at ring degree `2^log_n`
/// (ternary secret, HE-standard table; the `2^17` entry follows the
/// accelerator papers' usage of ≈2240-bit moduli at `N = 2^17`).
pub fn max_log_qp_128(log_n: u32) -> u32 {
    match log_n {
        0..=11 => 54,
        12 => 109,
        13 => 218,
        14 => 438,
        15 => 881,
        16 => 1761,
        17 => 3524,
        _ => 3524 + (log_n - 17) * 1760,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_baseline_derived_values() {
        let p = SchemeParams::baseline();
        assert_eq!(p.degree(), 1 << 17);
        assert_eq!(p.slots(), 1 << 16);
        assert_eq!(p.alpha(), 12);
        assert_eq!(p.special_limbs(), 12);
        assert_eq!(p.beta_at(35), 3);
        assert_eq!(p.beta_at(12), 2); // ⌈13/12⌉
        assert_eq!(p.beta_at(11), 1);
        // One limb ≈ 1 MB (the paper's §3.1: "the size of a ciphertext
        // limb is ~1 MB").
        assert_eq!(p.limb_bytes(), 1 << 20);
        // Full ciphertext ≈ 73.4 MB (paper §2.2: ~73.4 MB at L = 35).
        let ct_mb = p.ciphertext_bytes(35) as f64 / 1e6;
        assert!((ct_mb - 73.4).abs() < 0.1, "{ct_mb}");
    }

    #[test]
    fn mad_optimal_derived_values() {
        let p = SchemeParams::mad_optimal();
        assert_eq!(p.alpha(), 21); // ⌈41/2⌉
        assert_eq!(p.beta_at(40), 2);
    }

    #[test]
    fn ntt_op_counts() {
        let p = SchemeParams::baseline();
        assert_eq!(p.ntt_butterflies(), (1 << 16) * 17);
        assert_eq!(p.ntt_ops(), 3 * (1 << 16) * 17);
    }

    #[test]
    fn security_bound_monotone_in_degree() {
        for log_n in 12..17 {
            assert!(max_log_qp_128(log_n) < max_log_qp_128(log_n + 1));
        }
        // The baseline is secure; an absurdly deep chain is not.
        assert!(SchemeParams::baseline().is_secure_128());
        let deep = SchemeParams {
            limbs: 80,
            ..SchemeParams::baseline()
        };
        assert!(!deep.is_secure_128());
    }

    #[test]
    fn key_sizes() {
        let p = SchemeParams::baseline();
        // 2 · 3 digits · 47 limbs · 1 MB ≈ 295 MB.
        let mb = p.switching_key_bytes() as f64 / 1e6;
        assert!((mb - 295.7).abs() < 1.0, "{mb}");
    }
}
