//! Measured-vs-modeled comparison plumbing for the `validate` binary.
//!
//! The functional crates (`fhe-math`, `ckks`) count the modular operations
//! they actually execute when built with their `telemetry` feature; this
//! module diffs those counts against the analytical predictions of
//! [`crate::primitives`] and renders the result as a machine-readable JSON
//! report. Gating is driven by a committed tolerance file: every gated
//! `(primitive, metric)` pair must have an entry, and its relative error
//! must not exceed the committed bound.
//!
//! The tolerance file is plain text — one `primitive metric tolerance`
//! triple per line, `#` comments and blank lines ignored:
//!
//! ```text
//! # primitive   metric   max relative error
//! Add           adds     0.0
//! KeySwitch     mults    0.12
//! ```
//!
//! Known, deterministic deviations between the implementation and the
//! model (the inverse NTT's normalization multiplies, the `ModDown`
//! centering trick, `Rescale`'s direct single-source conversion, the
//! inner product's accumulation into zeroed buffers) are absorbed by the
//! committed bounds and documented in `DESIGN.md` §4.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One gated metric of one primitive: a measured count against the
/// model's prediction.
#[derive(Clone, Copy, Debug)]
pub struct MetricCheck {
    /// Metric name (`mults`, `adds`, `ntt_fwd`, `ntt_inv`, …).
    pub metric: &'static str,
    /// Count observed by the telemetry layer.
    pub measured: u64,
    /// Count predicted by the analytical model.
    pub modeled: u64,
}

impl MetricCheck {
    /// Relative error `|measured − modeled| / modeled`. When the model
    /// predicts zero, the error is zero if the measurement agrees and
    /// infinite otherwise.
    pub fn rel_err(&self) -> f64 {
        if self.modeled == 0 {
            if self.measured == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (self.measured as f64 - self.modeled as f64).abs() / self.modeled as f64
        }
    }
}

/// All checks for one primitive: the gated metrics plus informational
/// rows (byte proxies) that are reported but never gated.
#[derive(Clone, Debug)]
pub struct PrimitiveCheck {
    /// Primitive name, matching the tolerance file and span names.
    pub name: String,
    /// Gated metrics.
    pub metrics: Vec<MetricCheck>,
    /// Informational metrics (reported in the JSON, not gated).
    pub info: Vec<MetricCheck>,
}

impl PrimitiveCheck {
    /// Creates a check with no rows yet.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            metrics: Vec::new(),
            info: Vec::new(),
        }
    }
}

/// Committed per-`(primitive, metric)` relative-error bounds.
#[derive(Clone, Debug, Default)]
pub struct Tolerances {
    bounds: BTreeMap<(String, String), f64>,
}

impl Tolerances {
    /// Parses the plain-text tolerance format. Returns a description of
    /// the first malformed line on failure.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut bounds = BTreeMap::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (name, metric, tol) = match (parts.next(), parts.next(), parts.next()) {
                (Some(n), Some(m), Some(t)) => (n, m, t),
                _ => {
                    return Err(format!(
                        "line {}: expected `primitive metric tolerance`",
                        idx + 1
                    ))
                }
            };
            if parts.next().is_some() {
                return Err(format!("line {}: trailing fields", idx + 1));
            }
            let tol: f64 = tol
                .parse()
                .map_err(|_| format!("line {}: `{tol}` is not a number", idx + 1))?;
            if !(0.0..).contains(&tol) {
                return Err(format!("line {}: tolerance must be non-negative", idx + 1));
            }
            bounds.insert((name.to_string(), metric.to_string()), tol);
        }
        Ok(Self { bounds })
    }

    /// The committed bound for a `(primitive, metric)` pair, if any.
    pub fn get(&self, name: &str, metric: &str) -> Option<f64> {
        self.bounds
            .get(&(name.to_string(), metric.to_string()))
            .copied()
    }

    /// Number of committed bounds.
    pub fn len(&self) -> usize {
        self.bounds.len()
    }

    /// True when no bounds are committed.
    pub fn is_empty(&self) -> bool {
        self.bounds.is_empty()
    }
}

/// One gate failure: either the relative error exceeded its bound or no
/// bound was committed for a gated metric.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Primitive name.
    pub primitive: String,
    /// Metric name.
    pub metric: &'static str,
    /// Human-readable description of the failure.
    pub reason: String,
}

/// The full validation result: per-primitive checks against one
/// parameter-set description.
#[derive(Clone, Debug)]
pub struct ValidationReport {
    /// Free-form `key: value` description of the parameter point, emitted
    /// into the JSON header.
    pub params: Vec<(String, String)>,
    /// All primitive checks, in run order.
    pub primitives: Vec<PrimitiveCheck>,
}

impl ValidationReport {
    /// Gates every metric against the committed tolerances, returning all
    /// violations (empty means the report passes).
    pub fn evaluate(&self, tol: &Tolerances) -> Vec<Violation> {
        let mut out = Vec::new();
        for p in &self.primitives {
            for m in &p.metrics {
                match tol.get(&p.name, m.metric) {
                    None => out.push(Violation {
                        primitive: p.name.clone(),
                        metric: m.metric,
                        reason: format!("no tolerance committed for {}/{}", p.name, m.metric),
                    }),
                    Some(bound) => {
                        let err = m.rel_err();
                        if err > bound {
                            out.push(Violation {
                                primitive: p.name.clone(),
                                metric: m.metric,
                                reason: format!(
                                    "{}/{}: measured {} vs modeled {} (rel err {:.4} > tolerance {:.4})",
                                    p.name, m.metric, m.measured, m.modeled, err, bound
                                ),
                            });
                        }
                    }
                }
            }
        }
        out
    }

    /// Renders the report as JSON (schema `mad-validate-v1`), including
    /// the pass/fail verdict under the given tolerances.
    pub fn to_json(&self, tol: &Tolerances) -> String {
        let violations = self.evaluate(tol);
        let mut s = String::new();
        s.push_str("{\n  \"schema\": \"mad-validate-v1\",\n  \"params\": {");
        for (i, (k, v)) in self.params.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "{}: {}", json_string(k), json_string(v));
        }
        s.push_str("},\n  \"primitives\": [\n");
        for (pi, p) in self.primitives.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"name\": {}, \"metrics\": [",
                json_string(&p.name)
            );
            for (i, m) in p.metrics.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                let bound = tol.get(&p.name, m.metric);
                let pass = bound.is_some_and(|b| m.rel_err() <= b);
                let _ = write!(
                    s,
                    "{{\"metric\": {}, \"measured\": {}, \"modeled\": {}, \"rel_err\": {}, \"tolerance\": {}, \"pass\": {}}}",
                    json_string(m.metric),
                    m.measured,
                    m.modeled,
                    json_f64(m.rel_err()),
                    bound.map_or_else(|| "null".to_string(), json_f64),
                    pass
                );
            }
            s.push_str("], \"info\": [");
            for (i, m) in p.info.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                let _ = write!(
                    s,
                    "{{\"metric\": {}, \"measured\": {}, \"modeled\": {}, \"rel_err\": {}}}",
                    json_string(m.metric),
                    m.measured,
                    m.modeled,
                    json_f64(m.rel_err())
                );
            }
            s.push_str("]}");
            if pi + 1 < self.primitives.len() {
                s.push(',');
            }
            s.push('\n');
        }
        let _ = write!(
            s,
            "  ],\n  \"violations\": {},\n  \"pass\": {}\n}}\n",
            violations.len(),
            violations.is_empty()
        );
        s
    }
}

/// Escapes a string as a JSON string literal (quotes included).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a float as a JSON number (JSON has no infinities; they surface
/// as a large sentinel that still fails any finite tolerance).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "1e308".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rel_err_handles_zero_model() {
        let exact = MetricCheck {
            metric: "mults",
            measured: 0,
            modeled: 0,
        };
        assert_eq!(exact.rel_err(), 0.0);
        let phantom = MetricCheck {
            metric: "mults",
            measured: 5,
            modeled: 0,
        };
        assert!(phantom.rel_err().is_infinite());
        let ten_pct = MetricCheck {
            metric: "adds",
            measured: 110,
            modeled: 100,
        };
        assert!((ten_pct.rel_err() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn tolerance_parsing_accepts_comments_and_blanks() {
        let t =
            Tolerances::parse("# header comment\n\nAdd adds 0.0\nKeySwitch mults 0.12 # inline\n")
                .unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.get("Add", "adds"), Some(0.0));
        assert_eq!(t.get("KeySwitch", "mults"), Some(0.12));
        assert_eq!(t.get("KeySwitch", "adds"), None);
    }

    #[test]
    fn tolerance_parsing_rejects_malformed_lines() {
        assert!(Tolerances::parse("Add adds")
            .unwrap_err()
            .contains("line 1"));
        assert!(Tolerances::parse("Add adds x")
            .unwrap_err()
            .contains("not a number"));
        assert!(Tolerances::parse("Add adds 0.1 extra")
            .unwrap_err()
            .contains("trailing"));
        assert!(Tolerances::parse("Add adds -0.5")
            .unwrap_err()
            .contains("non-negative"));
    }

    fn sample_report() -> ValidationReport {
        ValidationReport {
            params: vec![("log_n".into(), "6".into())],
            primitives: vec![PrimitiveCheck {
                name: "Add".into(),
                metrics: vec![
                    MetricCheck {
                        metric: "adds",
                        measured: 640,
                        modeled: 640,
                    },
                    MetricCheck {
                        metric: "mults",
                        measured: 12,
                        modeled: 10,
                    },
                ],
                info: vec![MetricCheck {
                    metric: "bytes",
                    measured: 100,
                    modeled: 50,
                }],
            }],
        }
    }

    #[test]
    fn evaluation_gates_on_committed_bounds() {
        let report = sample_report();
        let pass = Tolerances::parse("Add adds 0.0\nAdd mults 0.25").unwrap();
        assert!(report.evaluate(&pass).is_empty());
        let tight = Tolerances::parse("Add adds 0.0\nAdd mults 0.1").unwrap();
        let v = report.evaluate(&tight);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].metric, "mults");
        // A missing bound for a gated metric is itself a violation; the
        // informational rows never gate.
        let missing = Tolerances::parse("Add adds 0.0").unwrap();
        let v = report.evaluate(&missing);
        assert_eq!(v.len(), 1);
        assert!(v[0].reason.contains("no tolerance"));
    }

    #[test]
    fn json_report_is_well_formed() {
        let report = sample_report();
        let tol = Tolerances::parse("Add adds 0.0\nAdd mults 0.25").unwrap();
        let json = report.to_json(&tol);
        assert!(json.contains("\"schema\": \"mad-validate-v1\""));
        assert!(json.contains("\"pass\": true"));
        assert!(json.contains("\"measured\": 640"));
        assert!(json.contains("\"metric\": \"bytes\""));
        // Balanced braces/brackets (cheap structural sanity without a
        // JSON parser in the dependency-free crate).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        let failing = Tolerances::parse("Add adds 0.0\nAdd mults 0.01").unwrap();
        assert!(report.to_json(&failing).contains("\"pass\": false"));
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
        assert_eq!(json_f64(f64::INFINITY), "1e308");
    }
}
