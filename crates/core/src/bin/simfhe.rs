//! The `simfhe` command-line tool: interactive access to the cost model
//! without writing Rust.
//!
//! ```text
//! simfhe primitive [--mad] [--ell N]      per-primitive cost table
//! simfhe bootstrap [--mad] [--csv]        bootstrap cost + phase breakdown
//! simfhe designs   [--mad]                roofline across the Table-6 designs
//! simfhe search    [--cache MB] [--top N] memory-aware parameter search
//! ```
//!
//! Flags: `--mad` enables all MAD optimizations (default: the Jung et al.
//! baseline), `--csv` prints CSV instead of an aligned table,
//! `--params logq,L,dnum,fftIter` overrides the parameter set.

use simfhe::bootstrap::BootstrapPhase;
use simfhe::report::Table;
use simfhe::search::{search, SearchSpace};
use simfhe::throughput::run_mad_bootstrap;
use simfhe::{CostModel, HardwareConfig, MadConfig, SchemeParams};

/// Minimal flag parser: `--key value` pairs plus one positional command.
struct Args {
    command: String,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse() -> Self {
        let mut argv = std::env::args().skip(1);
        let command = argv.next().unwrap_or_else(|| "help".to_string());
        let mut flags = Vec::new();
        let rest: Vec<String> = argv.collect();
        let mut i = 0;
        while i < rest.len() {
            let key = rest[i].trim_start_matches("--").to_string();
            let value = if i + 1 < rest.len() && !rest[i + 1].starts_with("--") {
                i += 1;
                Some(rest[i].clone())
            } else {
                None
            };
            flags.push((key, value));
            i += 1;
        }
        Self { command, flags }
    }

    fn has(&self, key: &str) -> bool {
        self.flags.iter().any(|(k, _)| k == key)
    }

    fn value(&self, key: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.as_deref())
    }

    fn usize_flag(&self, key: &str, default: usize) -> usize {
        self.value(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    fn f64_flag(&self, key: &str, default: f64) -> f64 {
        self.value(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    fn params(&self) -> SchemeParams {
        match self.value("params") {
            Some(spec) => {
                let parts: Vec<usize> = spec
                    .split(',')
                    .filter_map(|p| p.trim().parse().ok())
                    .collect();
                if parts.len() != 4 {
                    eprintln!("--params expects logq,L,dnum,fftIter; using defaults");
                    return self.default_params();
                }
                SchemeParams {
                    log_n: 17,
                    log_q: parts[0] as u32,
                    limbs: parts[1],
                    dnum: parts[2],
                    fft_iter: parts[3],
                }
            }
            None => self.default_params(),
        }
    }

    fn default_params(&self) -> SchemeParams {
        if self.has("mad") {
            SchemeParams::mad_practical()
        } else {
            SchemeParams::baseline()
        }
    }

    fn config(&self) -> MadConfig {
        if self.has("mad") {
            MadConfig::all()
        } else {
            MadConfig::baseline()
        }
    }
}

fn emit(args: &Args, table: Table) {
    if args.has("csv") {
        print!("{}", table.to_csv());
    } else {
        println!("{}", table.render());
    }
}

fn cmd_primitive(args: &Args) {
    let params = args.params();
    let ell = args.usize_flag("ell", params.limbs);
    let model = CostModel::new(params, args.config());
    let mut t = Table::new(
        format!("primitive costs at ℓ = {ell} ({params:?})"),
        &["op", "Gops", "GB", "AI"],
    );
    let rows: [(&str, simfhe::Cost); 7] = [
        ("Add", model.add(ell)),
        ("PtMult", model.pt_mult(ell)),
        ("Mult", model.mult(ell)),
        ("Rotate", model.rotate(ell)),
        ("Rescale", model.rescale(ell)),
        ("KeySwitch", model.keyswitch(ell)),
        ("ModDown", model.mod_down(ell, model.params.special_limbs())),
    ];
    for (name, c) in rows {
        t.row(&[
            name.to_string(),
            format!("{:.4}", c.ops() as f64 / 1e9),
            format!("{:.4}", c.dram_total() as f64 / 1e9),
            format!("{:.2}", c.arithmetic_intensity()),
        ]);
    }
    emit(args, t);
}

fn cmd_bootstrap(args: &Args) {
    let params = args.params();
    let model = CostModel::new(params, args.config());
    let b = model.bootstrap();
    let mut t = Table::new(
        format!(
            "bootstrap phases ({params:?}; {} switches, log Q1 = {})",
            b.orientation_switches, b.log_q1
        ),
        &["phase", "Gops", "GB", "share%"],
    );
    for (phase, c) in BootstrapPhase::ALL.iter().zip(&b.phases) {
        t.row(&[
            phase.name().to_string(),
            format!("{:.1}", c.ops() as f64 / 1e9),
            format!("{:.1}", c.dram_total() as f64 / 1e9),
            format!(
                "{:.1}",
                100.0 * c.dram_total() as f64 / b.cost.dram_total() as f64
            ),
        ]);
    }
    t.row(&[
        "total".to_string(),
        format!("{:.1}", b.cost.ops() as f64 / 1e9),
        format!("{:.1}", b.cost.dram_total() as f64 / 1e9),
        "100.0".to_string(),
    ]);
    emit(args, t);
}

fn cmd_designs(args: &Args) {
    let params = args.params();
    let mut t = Table::new(
        format!("Table-6 designs at 32 MB ({params:?})"),
        &["design", "boot ms", "tput(10^7/s)", "bound"],
    );
    for hw in HardwareConfig::all_designs() {
        let run = run_mad_bootstrap(params, &hw.with_cache_mb(32.0));
        t.row(&[
            hw.name.to_string(),
            format!("{:.1}", run.runtime_ms),
            format!("{:.0}", run.throughput_display),
            if run.memory_bound { "mem" } else { "comp" }.to_string(),
        ]);
    }
    emit(args, t);
}

fn cmd_search(args: &Args) {
    let cache = args.f64_flag("cache", 32.0);
    let top = args.usize_flag("top", 5);
    let hw = HardwareConfig::gpu().with_cache_mb(cache);
    let space = SearchSpace::default();
    let results = search(&space, &hw);
    let mut t = Table::new(
        format!("top {top} parameter sets at {cache} MB"),
        &["logq", "L", "dnum", "fftIter", "boot ms", "tput(10^7/s)"],
    );
    for r in results.iter().take(top) {
        let p = r.run.params;
        t.row(&[
            p.log_q.to_string(),
            p.limbs.to_string(),
            p.dnum.to_string(),
            p.fft_iter.to_string(),
            format!("{:.1}", r.run.runtime_ms),
            format!("{:.0}", r.run.throughput_display),
        ]);
    }
    emit(args, t);
}

/// Memory-trace capture + cache-replay validation (`--features trace`):
/// records limb touches from the functional crates, exports Perfetto
/// JSON, sweeps cache sizes, and gates the replayed DRAM bytes against
/// the committed tolerances.
#[cfg(feature = "trace")]
fn cmd_trace(args: &Args) -> i32 {
    let mut opts = simfhe::capture::TraceOptions::default();
    if let Some(p) = args.value("tolerances") {
        opts.tolerances = Some(p.to_string());
    }
    if let Some(p) = args.value("perfetto") {
        opts.perfetto_out = p.to_string();
    }
    if let Some(p) = args.value("sweep") {
        opts.sweep_out = p.to_string();
    }
    if let Some(p) = args.value("out") {
        opts.report_out = Some(p.to_string());
    }
    simfhe::capture::run_trace_command(&opts)
}

#[cfg(not(feature = "trace"))]
fn cmd_trace(_args: &Args) -> i32 {
    eprintln!(
        "the `trace` subcommand needs the capture feature:\n\
         \x20 cargo run -p simfhe --bin simfhe --features trace -- trace"
    );
    2
}

fn main() {
    let args = Args::parse();
    match args.command.as_str() {
        "primitive" => cmd_primitive(&args),
        "bootstrap" => cmd_bootstrap(&args),
        "designs" => cmd_designs(&args),
        "search" => cmd_search(&args),
        "trace" => std::process::exit(cmd_trace(&args)),
        other => {
            if other != "help" {
                eprintln!("unknown command: {other}\n");
            }
            eprintln!(
                "usage: simfhe <command> [flags]\n\
                 commands:\n\
                 \x20 primitive [--mad] [--ell N] [--csv]   per-primitive cost table\n\
                 \x20 bootstrap [--mad] [--csv]             bootstrap phase breakdown\n\
                 \x20 designs   [--mad]                     roofline across Table-6 designs\n\
                 \x20 search    [--cache MB] [--top N]      parameter search\n\
                 \x20 trace     [--perfetto F] [--sweep F]  memory-trace capture + cache replay\n\
                 \x20           [--tolerances F] [--out F]  (needs --features trace)\n\
                 flags:\n\
                 \x20 --params logq,L,dnum,fftIter          override the parameter set\n\
                 \x20 --mad                                 all MAD optimizations on"
            );
            std::process::exit(if other == "help" { 0 } else { 2 });
        }
    }
}
