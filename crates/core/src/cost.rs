//! The cost accumulator: modular-arithmetic operations and DRAM traffic,
//! split by category exactly as the paper reports them (ciphertext limb
//! reads/writes, switching-key reads, plaintext reads).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul};

/// Compute operations and DRAM bytes attributed to one (sub-)operation.
///
/// `ops` counts individual modular multiplications and additions — the
/// granularity of the paper's Section 4.1 ("SimFHE tracks compute at the
/// modular arithmetic level").
#[derive(Clone, Copy, Default, PartialEq)]
pub struct Cost {
    /// Modular multiplications.
    pub mults: u64,
    /// Modular additions/subtractions.
    pub adds: u64,
    /// DRAM bytes read for ciphertext/plaintext-sized ring data.
    pub ct_read: u64,
    /// DRAM bytes written for ciphertext-sized ring data.
    pub ct_write: u64,
    /// DRAM bytes read for switching keys.
    pub key_read: u64,
    /// DRAM bytes read for plaintext operands (encoded constants,
    /// matrix diagonals).
    pub pt_read: u64,
}

impl fmt::Debug for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Cost {{ {:.4} Gops, {:.4} GB dram ({:.3} rd / {:.3} wr / {:.3} key / {:.3} pt), AI {:.2} }}",
            self.ops() as f64 / 1e9,
            self.dram_total() as f64 / 1e9,
            self.ct_read as f64 / 1e9,
            self.ct_write as f64 / 1e9,
            self.key_read as f64 / 1e9,
            self.pt_read as f64 / 1e9,
            self.arithmetic_intensity()
        )
    }
}

impl Cost {
    /// The zero cost.
    pub const ZERO: Cost = Cost {
        mults: 0,
        adds: 0,
        ct_read: 0,
        ct_write: 0,
        key_read: 0,
        pt_read: 0,
    };

    /// Pure compute cost.
    pub fn compute(mults: u64, adds: u64) -> Self {
        Cost {
            mults,
            adds,
            ..Cost::ZERO
        }
    }

    /// Total modular operations.
    pub fn ops(&self) -> u64 {
        self.mults + self.adds
    }

    /// Total DRAM bytes moved.
    pub fn dram_total(&self) -> u64 {
        self.ct_read + self.ct_write + self.key_read + self.pt_read
    }

    /// DRAM bytes read (all categories).
    pub fn dram_read(&self) -> u64 {
        self.ct_read + self.key_read + self.pt_read
    }

    /// Arithmetic intensity in ops/byte (Table 4's `AI` row).
    pub fn arithmetic_intensity(&self) -> f64 {
        if self.dram_total() == 0 {
            0.0
        } else {
            self.ops() as f64 / self.dram_total() as f64
        }
    }
}

impl Add for Cost {
    type Output = Cost;
    fn add(self, rhs: Cost) -> Cost {
        Cost {
            mults: self.mults + rhs.mults,
            adds: self.adds + rhs.adds,
            ct_read: self.ct_read + rhs.ct_read,
            ct_write: self.ct_write + rhs.ct_write,
            key_read: self.key_read + rhs.key_read,
            pt_read: self.pt_read + rhs.pt_read,
        }
    }
}

impl AddAssign for Cost {
    fn add_assign(&mut self, rhs: Cost) {
        *self = *self + rhs;
    }
}

impl Mul<u64> for Cost {
    type Output = Cost;
    fn mul(self, k: u64) -> Cost {
        Cost {
            mults: self.mults * k,
            adds: self.adds * k,
            ct_read: self.ct_read * k,
            ct_write: self.ct_write * k,
            key_read: self.key_read * k,
            pt_read: self.pt_read * k,
        }
    }
}

impl Sum for Cost {
    fn sum<I: Iterator<Item = Cost>>(iter: I) -> Cost {
        iter.fold(Cost::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulation_and_scaling() {
        let a = Cost {
            mults: 10,
            adds: 5,
            ct_read: 100,
            ct_write: 50,
            key_read: 20,
            pt_read: 10,
        };
        let b = a + a;
        assert_eq!(b.ops(), 30);
        assert_eq!(b.dram_total(), 360);
        assert_eq!((a * 3).mults, 30);
        let mut c = Cost::ZERO;
        c += a;
        c += a;
        assert_eq!(c, b);
        let s: Cost = [a, a, a].into_iter().sum();
        assert_eq!(s, a * 3);
    }

    #[test]
    fn arithmetic_intensity_definition() {
        let c = Cost {
            mults: 600,
            adds: 400,
            ct_read: 500,
            ct_write: 300,
            key_read: 150,
            pt_read: 50,
        };
        assert!((c.arithmetic_intensity() - 1.0).abs() < 1e-12);
        assert_eq!(Cost::ZERO.arithmetic_intensity(), 0.0);
    }
}
