//! Small plain-text table formatter used by the benchmark binaries that
//! regenerate the paper's tables and figures.

use std::fmt::Write as _;

/// A fixed-column text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "== {} ==", self.title);
        }
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }
}

impl Table {
    /// Renders as CSV (header row first; cells quoted only when needed).
    pub fn to_csv(&self) -> String {
        let quote = |c: &str| -> String {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let mut out = String::new();
        let mut write_row = |cells: &[String]| {
            let line: Vec<String> = cells.iter().map(|c| quote(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        write_row(&self.header);
        for row in &self.rows {
            write_row(row);
        }
        out
    }
}

/// Formats a `f64` with engineering-style significant digits.
pub fn sig3(x: f64) -> String {
    if x == 0.0 {
        return "0".to_string();
    }
    let mag = x.abs().log10().floor() as i32;
    let decimals = (2 - mag).clamp(0, 6) as usize;
    format!("{x:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["long-name".into(), "12345".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("long-name"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        // All data lines have equal width.
        let lines: Vec<&str> = s.lines().skip(1).collect();
        assert_eq!(lines[1].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn rejects_too_many_cells() {
        let mut t = Table::new("x", &["a"]);
        t.row(&["1".into(), "2".into()]);
    }

    #[test]
    fn renders_empty_tables() {
        // No rows: header and separator only.
        let t = Table::new("empty", &["a", "bb"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[2], "-".repeat("a".len() + "bb".len() + 2));

        // Degenerate zero-column table must not underflow the separator
        // width computation.
        let t = Table::new("", &[]);
        let s = t.render();
        assert_eq!(s, "\n\n");
    }

    #[test]
    fn column_widths_track_the_widest_cell() {
        let mut t = Table::new("", &["h", "wide-header"]);
        t.row(&["wider-cell".into(), "x".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        // Separator spans both column widths plus the two-space gap.
        assert_eq!(lines[1], "-".repeat(10 + 11 + 2));
        // Right-aligned header pads to the widest cell below it.
        assert!(lines[0].starts_with("         h"));
        assert!(lines[2].ends_with("          x"));
    }

    #[test]
    fn csv_round_trips_structure() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&["plain".into(), "with,comma".into()]);
        t.row(&["quote\"d".into(), "x".into()]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "a,b");
        assert_eq!(lines[1], "plain,\"with,comma\"");
        assert_eq!(lines[2], "\"quote\"\"d\",x");
    }

    #[test]
    fn renders_cache_sweep_columns() {
        // The `simfhe trace` sweep CSV is produced through this renderer;
        // pin its column contract so downstream plots don't silently
        // break.
        let rows = vec![crate::trace::SweepRow {
            primitive: "KeySwitch".into(),
            cache_mb: 4.0 / 1024.0,
            caching: "O(1)-limb".into(),
            modeled_bytes: 87040,
            measured_bytes: 56832,
        }];
        let t = crate::trace::sweep_table(&rows);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(
            lines[0],
            "primitive,cache_KiB,caching,modeled_B,measured_B,meas/model"
        );
        assert_eq!(lines[1], "KeySwitch,4.0,O(1)-limb,87040,56832,0.653");
        // The aligned rendering carries the same cells.
        let rendered = t.render();
        assert!(rendered.contains("meas/model"));
        assert!(rendered.contains("0.653"));
    }

    #[test]
    fn sig3_formatting() {
        assert_eq!(sig3(0.0), "0");
        assert_eq!(sig3(1234.2), "1234");
        assert_eq!(sig3(6.54321), "6.54");
        assert_eq!(sig3(0.0123), "0.0123");
    }
}
