//! Cost model for `PtMatVecMult` — the plaintext matrix–vector product at
//! the core of bootstrapping's CoeffToSlot and SlotToCoeff phases.
//!
//! Three schedules (the paper's Figure 5):
//!
//! - **Naive**: every diagonal pays a full `Rotate`.
//! - **ModUp-hoisted BSGS** (the Jung et al. baseline): one decomposition
//!   shared by `n_1` baby rotations, each still paying its two
//!   `ModDown`s, plus `n_2 − 1` full giant rotations.
//! - **ModDown-hoisted** (MAD): products and sums accumulate in the raised
//!   basis; one `ModUp` and two `ModDown`s total, at the price of reading
//!   one switching key per diagonal (the §3.2 key-reads-vs-ct-reads
//!   trade-off).

use crate::cost::Cost;
use crate::opts::CachingLevel;
use crate::primitives::CostModel;

/// Shape of one `PtMatVecMult`: limb count and nonzero-diagonal count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MatVecShape {
    /// Ciphertext limb count on entry.
    pub ell: usize,
    /// Number of nonzero generalized diagonals (`r` rotations).
    pub diagonals: usize,
}

/// Orientation-switch and cost accounting for one `PtMatVecMult`.
#[derive(Clone, Copy, Debug, Default)]
pub struct MatVecCost {
    /// Accumulated compute + DRAM cost.
    pub cost: Cost,
    /// Limb-wise ↔ slot-wise data-orientation switches (the diagnostic the
    /// paper quotes: 44 for the baseline vs `fftIter × 3` with MAD).
    pub orientation_switches: u64,
}

impl CostModel {
    /// DRAM bytes to fetch one encoded DFT diagonal: the coefficients fit
    /// a single machine word (scale Δ < one limb prime), so diagonals are
    /// stored in scalar form and expanded into their RNS limbs on-chip —
    /// two limbs' worth of traffic (value + bookkeeping) per diagonal
    /// rather than `ℓ` limbs.
    pub fn diagonal_pt_bytes(&self) -> u64 {
        2 * self.params.limb_bytes()
    }

    /// Baby dimension for the BSGS schedule: the power of two nearest
    /// `√r`, biased large — the paper chooses the larger baby step
    /// (more key reads, fewer ciphertext reads).
    pub fn bsgs_baby_dim(&self, diagonals: usize) -> usize {
        let mut n1 = 1usize;
        while n1 * n1 < diagonals {
            n1 <<= 1;
        }
        n1.max(1)
    }

    /// Cost of one `PtMatVecMult` under the active MAD configuration.
    pub fn pt_mat_vec_mult(&self, shape: MatVecShape) -> MatVecCost {
        if self.config.algo.moddown_hoist {
            self.matvec_fully_hoisted(shape)
        } else if self.config.algo.modup_hoist {
            self.matvec_bsgs(shape)
        } else {
            self.matvec_naive(shape)
        }
    }

    /// Figure 5a: a full `Rotate` + `PtMult` + `Add` per diagonal.
    fn matvec_naive(&self, shape: MatVecShape) -> MatVecCost {
        let MatVecShape { ell, diagonals } = shape;
        let beta = self.params.beta_at(ell);
        let mut out = MatVecCost::default();
        for _ in 0..diagonals {
            out.cost += self.rotate(ell);
            out.cost += self.pt_mult_no_rescale(ell);
            out.cost += self.add(ell);
            // Each Rotate: β ModUps + 2 ModDowns, each one orientation
            // round-trip.
            out.orientation_switches += beta as u64 + 2;
        }
        out.cost += self.rescale(ell);
        out
    }

    /// The Jung et al. baseline: ModUp hoisting with BSGS.
    fn matvec_bsgs(&self, shape: MatVecShape) -> MatVecCost {
        let MatVecShape { ell, diagonals } = shape;
        let beta = self.params.beta_at(ell);
        let n1 = self.bsgs_baby_dim(diagonals);
        let n2 = diagonals.div_ceil(n1);
        let mut out = MatVecCost::default();

        // One shared decomposition + ModUp.
        out.cost += self.decomp(ell);
        for j in 0..beta {
            out.cost += self.mod_up_digit(ell, self.digit_width(ell, j));
        }
        out.orientation_switches += beta as u64;

        // Baby rotations: inner product + two ModDowns each. With β-limb
        // caching the digits are read once for the whole baby batch.
        let beta_cached = self.config.caches_at_least(CachingLevel::BetaLimbs);
        for b in 0..n1 {
            let charge_digits = !beta_cached || b == 0;
            out.cost += self.ksk_inner_product(ell, beta, charge_digits, true);
            out.cost += self.mod_down(ell, self.params.special_limbs()) * 2;
            out.cost += self.automorph(ell, false);
            out.orientation_switches += 2;
        }

        // Inner sums, streamed per giant group: each group reads its
        // babies and diagonals once and keeps the accumulator resident.
        let n = self.params.degree();
        let limb = self.params.limb_bytes();
        let mut remaining = diagonals;
        for _ in 0..n2 {
            let d_g = remaining.min(n1) as u64;
            remaining -= d_g as usize;
            out.cost += Cost {
                mults: 2 * n * ell as u64 * d_g,
                adds: 2 * n * ell as u64 * d_g,
                ct_read: 2 * ell as u64 * limb * d_g,
                pt_read: self.diagonal_pt_bytes() * d_g,
                ct_write: 2 * ell as u64 * limb,
                ..Cost::ZERO
            };
        }

        // Giant rotations: full Rotate each (non-zero giants only), with
        // the result accumulation fused into the rotation's final pass.
        for _ in 0..n2.saturating_sub(1) {
            out.cost += self.rotate(ell);
            out.cost += Cost {
                adds: 2 * n * ell as u64,
                ct_read: 2 * ell as u64 * limb,
                ..Cost::ZERO
            };
            out.orientation_switches += beta as u64 + 2;
        }
        out.cost += self.rescale(ell);
        out
    }

    /// Figure 5c: ModUp + ModDown hoisting — one `ModUp`, two `ModDown`s,
    /// everything in between in the raised basis.
    fn matvec_fully_hoisted(&self, shape: MatVecShape) -> MatVecCost {
        let MatVecShape { ell, diagonals } = shape;
        let k = self.params.special_limbs();
        let w = (ell + k) as u64;
        let n = self.params.degree();
        let limb = self.params.limb_bytes();
        let beta = self.params.beta_at(ell);
        let mut out = MatVecCost::default();

        // One shared decomposition + ModUp.
        out.cost += self.decomp(ell);
        for j in 0..beta {
            out.cost += self.mod_up_digit(ell, self.digit_width(ell, j));
        }
        out.orientation_switches += beta as u64;

        // Per diagonal: inner product with that rotation's key (digits
        // cached once under β-limb caching), then the plaintext product
        // and accumulation in the raised basis (2 polys × w limbs), plus
        // the σ(c0) leg in the base basis.
        let beta_cached = self.config.caches_at_least(CachingLevel::BetaLimbs);
        let fused = self.config.caches_at_least(CachingLevel::OneLimb);
        for d in 0..diagonals {
            let charge_digits = !beta_cached || d == 0;
            // Under fusion the raised pair is consumed by the accumulator
            // as it is produced and never written out per-diagonal.
            let mut c = self.ksk_inner_product(ell, beta, charge_digits, !fused);
            // Raised-basis PtMult + Add on (û, v̂); the diagonal is
            // fetched compactly and expanded on-chip.
            c += Cost {
                mults: 2 * n * w,
                adds: 2 * n * w,
                pt_read: self.diagonal_pt_bytes(),
                ..Cost::ZERO
            };
            // σ(c0)·pt + add in the base basis. With β-limb caching the
            // loop runs limb-major, so c0 is read once per matrix rather
            // than once per diagonal.
            c += Cost {
                mults: n * ell as u64,
                adds: n * ell as u64,
                ct_read: if beta_cached && d > 0 {
                    0
                } else {
                    ell as u64 * limb
                },
                ..Cost::ZERO
            };
            // Accumulators stay on-chip between diagonals when the cache
            // holds O(β) limbs or more; otherwise they round-trip.
            if !beta_cached {
                c.ct_read += 2 * w * limb;
                c.ct_write += 2 * w * limb;
            }
            out.cost += c;
        }
        // The raised accumulators are written out once before the final
        // pair of ModDowns.
        out.cost += Cost {
            ct_write: 2 * w * limb,
            ..Cost::ZERO
        };
        out.cost += self.mod_down(ell, k) * 2;
        out.orientation_switches += 2;
        out.cost += self.rescale(ell);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opts::{AlgoOpts, MadConfig};
    use crate::params::SchemeParams;

    fn model(algo: AlgoOpts, caching: CachingLevel) -> CostModel {
        CostModel::new(SchemeParams::baseline(), MadConfig { caching, algo })
    }

    const SHAPE: MatVecShape = MatVecShape {
        ell: 30,
        diagonals: 16,
    };

    #[test]
    fn hoisting_ladder_reduces_compute() {
        let naive = model(AlgoOpts::none(), CachingLevel::OneLimb).pt_mat_vec_mult(SHAPE);
        let bsgs = model(
            AlgoOpts {
                modup_hoist: true,
                ..AlgoOpts::none()
            },
            CachingLevel::OneLimb,
        )
        .pt_mat_vec_mult(SHAPE);
        let full = model(
            AlgoOpts {
                modup_hoist: true,
                moddown_hoist: true,
                ..AlgoOpts::none()
            },
            CachingLevel::OneLimb,
        )
        .pt_mat_vec_mult(SHAPE);
        assert!(bsgs.cost.ops() < naive.cost.ops());
        assert!(full.cost.ops() < bsgs.cost.ops());
    }

    #[test]
    fn moddown_hoisting_minimizes_orientation_switches() {
        // Figure 5c: β ModUps + 2 ModDowns, independent of diagonal count.
        let full = model(
            AlgoOpts {
                modup_hoist: true,
                moddown_hoist: true,
                ..AlgoOpts::none()
            },
            CachingLevel::OneLimb,
        );
        let beta = full.params.beta_at(SHAPE.ell) as u64;
        let small = full.pt_mat_vec_mult(SHAPE);
        let big = full.pt_mat_vec_mult(MatVecShape {
            diagonals: 64,
            ..SHAPE
        });
        assert_eq!(small.orientation_switches, beta + 2);
        assert_eq!(big.orientation_switches, beta + 2);
    }

    #[test]
    fn bsgs_switches_grow_with_babies() {
        let bsgs = model(
            AlgoOpts {
                modup_hoist: true,
                ..AlgoOpts::none()
            },
            CachingLevel::OneLimb,
        );
        let s16 = bsgs.pt_mat_vec_mult(SHAPE).orientation_switches;
        let s64 = bsgs
            .pt_mat_vec_mult(MatVecShape {
                diagonals: 64,
                ..SHAPE
            })
            .orientation_switches;
        assert!(s64 > s16);
    }

    #[test]
    fn moddown_hoisting_trades_key_reads_for_ct_reads() {
        // §3.2: hoisting increases switching-key reads but reduces overall
        // ciphertext DRAM traffic.
        let caching = CachingLevel::AlphaLimbs;
        let bsgs = model(
            AlgoOpts {
                modup_hoist: true,
                ..AlgoOpts::none()
            },
            caching,
        )
        .pt_mat_vec_mult(SHAPE);
        let full = model(
            AlgoOpts {
                modup_hoist: true,
                moddown_hoist: true,
                ..AlgoOpts::none()
            },
            caching,
        )
        .pt_mat_vec_mult(SHAPE);
        assert!(
            full.cost.key_read > bsgs.cost.key_read,
            "hoisting should read more keys ({} vs {})",
            full.cost.key_read,
            bsgs.cost.key_read
        );
        assert!(
            full.cost.ct_read + full.cost.ct_write < bsgs.cost.ct_read + bsgs.cost.ct_write,
            "hoisting should move less ciphertext data"
        );
    }

    #[test]
    fn beta_caching_cuts_digit_rereads() {
        let algo = AlgoOpts {
            modup_hoist: true,
            moddown_hoist: true,
            ..AlgoOpts::none()
        };
        let no_cache = model(algo, CachingLevel::OneLimb).pt_mat_vec_mult(SHAPE);
        let cached = model(algo, CachingLevel::BetaLimbs).pt_mat_vec_mult(SHAPE);
        assert!(cached.cost.ct_read < no_cache.cost.ct_read);
        assert_eq!(
            cached.cost.ops(),
            no_cache.cost.ops(),
            "caching is compute-neutral"
        );
    }

    #[test]
    fn baby_dimension_is_near_sqrt() {
        let m = model(AlgoOpts::none(), CachingLevel::Baseline);
        assert_eq!(m.bsgs_baby_dim(1), 1);
        assert_eq!(m.bsgs_baby_dim(16), 4);
        assert_eq!(m.bsgs_baby_dim(17), 8);
        assert_eq!(m.bsgs_baby_dim(64), 8);
    }
}
