//! Brute-force memory-aware parameter search (§4.1, producing Table 5).
//!
//! Given an on-chip memory size and a hardware design, SimFHE enumerates
//! the CKKS parameter space — limb width `log q`, chain length `L`, digit
//! count `dnum`, DFT factorization `fftIter` — keeps the 128-bit-secure
//! points, simulates one bootstrap for each, and ranks them by the Eq.-3
//! throughput metric.

use crate::bootstrap::EVAL_MOD_DEPTH;
use crate::hardware::HardwareConfig;
use crate::params::SchemeParams;
use crate::throughput::{run_mad_bootstrap, MadRun};

/// Bounds of the search space.
#[derive(Clone, Debug)]
pub struct SearchSpace {
    /// `log2 N` (fixed; the paper searches at `2^17`).
    pub log_n: u32,
    /// Candidate limb widths.
    pub log_q: Vec<u32>,
    /// Candidate chain lengths.
    pub limbs: Vec<usize>,
    /// Candidate digit counts.
    pub dnum: Vec<usize>,
    /// Candidate DFT factorizations.
    pub fft_iter: Vec<usize>,
}

impl Default for SearchSpace {
    fn default() -> Self {
        Self {
            log_n: 17,
            log_q: (40..=60).step_by(2).collect(),
            limbs: (25..=55).collect(),
            dnum: vec![1, 2, 3, 4, 5],
            fft_iter: vec![1, 2, 3, 4, 6, 8],
        }
    }
}

impl SearchSpace {
    /// Total candidate count before filtering.
    pub fn candidate_count(&self) -> usize {
        self.log_q.len() * self.limbs.len() * self.dnum.len() * self.fft_iter.len()
    }

    /// Enumerates all valid, 128-bit-secure parameter points deep enough
    /// for bootstrapping.
    pub fn enumerate(&self) -> Vec<SchemeParams> {
        let mut out = Vec::new();
        for &log_q in &self.log_q {
            for &limbs in &self.limbs {
                for &dnum in &self.dnum {
                    if dnum > limbs {
                        continue;
                    }
                    for &fft_iter in &self.fft_iter {
                        let p = SchemeParams {
                            log_n: self.log_n,
                            log_q,
                            limbs,
                            dnum,
                            fft_iter,
                        };
                        let depth = 2 * fft_iter + 2 + EVAL_MOD_DEPTH;
                        if limbs <= depth {
                            continue;
                        }
                        if fft_iter > (self.log_n - 1) as usize {
                            continue;
                        }
                        if !p.is_secure_128() {
                            continue;
                        }
                        out.push(p);
                    }
                }
            }
        }
        out
    }
}

/// One scored point of the search.
#[derive(Clone, Copy, Debug)]
pub struct SearchResult {
    /// The simulated run.
    pub run: MadRun,
}

/// Runs the brute-force search, returning results sorted by descending
/// throughput.
pub fn search(space: &SearchSpace, hw: &HardwareConfig) -> Vec<SearchResult> {
    let mut results: Vec<SearchResult> = space
        .enumerate()
        .into_iter()
        .map(|p| SearchResult {
            run: run_mad_bootstrap(p, hw),
        })
        .collect();
    results.sort_by(|a, b| {
        b.run
            .throughput_display
            .partial_cmp(&a.run.throughput_display)
            .expect("throughputs are finite")
    });
    results
}

/// Convenience: the best parameter point for a design.
pub fn best_params(space: &SearchSpace, hw: &HardwareConfig) -> Option<SchemeParams> {
    search(space, hw).first().map(|r| r.run.params)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumeration_respects_constraints() {
        let space = SearchSpace::default();
        let points = space.enumerate();
        assert!(!points.is_empty());
        assert!(points.len() < space.candidate_count());
        for p in &points {
            assert!(p.is_secure_128(), "{p:?} insecure");
            assert!(p.limbs > 2 * p.fft_iter + 2 + EVAL_MOD_DEPTH);
        }
    }

    #[test]
    fn search_ranks_by_throughput() {
        // A reduced space to keep the test fast.
        let space = SearchSpace {
            log_q: vec![50, 54],
            limbs: vec![30, 35, 40],
            dnum: vec![2, 3],
            fft_iter: vec![3, 6],
            ..SearchSpace::default()
        };
        let hw = HardwareConfig::gpu().with_cache_mb(32.0);
        let results = search(&space, &hw);
        assert!(results.len() > 4);
        for w in results.windows(2) {
            assert!(
                w[0].run.throughput_display >= w[1].run.throughput_display,
                "results must be sorted"
            );
        }
    }

    #[test]
    fn deeper_chains_win_when_memory_allows() {
        // With all MAD optimizations at 32 MB, a longer chain amortizes the
        // fixed bootstrap cost over more post-bootstrap levels; the best
        // point should not be the shallowest legal chain.
        let space = SearchSpace {
            log_q: vec![50],
            limbs: (20..=44).collect(),
            dnum: vec![2],
            fft_iter: vec![6],
            ..SearchSpace::default()
        };
        let hw = HardwareConfig::gpu().with_cache_mb(32.0);
        let best = best_params(&space, &hw).unwrap();
        assert!(best.limbs > 22, "best L = {}", best.limbs);
    }
}
