//! A compact encrypted-program IR shared by the analytical cost model,
//! the functional executor (`fhe-program`), and the serving runtime.
//!
//! A [`Program`] is a straight-line sequence of CKKS primitive
//! instructions over *named ciphertext registers*, with read-only
//! plaintext-vector and diagonal-matrix operands declared up front. The
//! same definition serves three consumers:
//!
//! 1. **Pricing** — [`CostModel::program_cost`] folds the per-primitive
//!    costs of [`crate::primitives`] over the instruction stream,
//!    producing modular-op, DRAM, and whole-limb NTT predictions that the
//!    `validate` binary diffs against telemetry from a real execution.
//! 2. **Execution** — the `fhe-program` crate interprets the same
//!    instruction stream against a `CkksContext`, sharing the hoisted
//!    ModUp path for consecutive rotations of one register (the
//!    [`hoisted_runs`] schedule below is the contract between the model
//!    and the executor: both price/execute exactly these runs).
//! 3. **Serving** — `fhe-serve` uploads a serialized program once per
//!    session (`UploadProgram`) and runs it as a single `RunProgram`
//!    opcode, deriving the switching keys to pin from the program's
//!    [`KeyManifest`].
//!
//! # Level and scale rules
//!
//! [`Program::validate`] tracks, per register, the limb count (level) and
//! the *nominal scale exponent* — the power of the scheme scale Δ the
//! ciphertext carries. Inputs arrive at Δ¹. The checker rejects, before
//! any ciphertext is touched:
//!
//! - **level underflow** — `Mult`, `Rescale`, and `BsgsMatVec` need a
//!   limb to drop (ℓ ≥ 2); every instruction needs a defined source;
//! - **scale mismatch** — `Add`/`Sub` require both operands at the same
//!   exponent (the functional `Evaluator` enforces the same invariant at
//!   runtime with a relative tolerance; the static exponent model is
//!   exact because every scale in a valid program is a product of Δ
//!   powers divided by rescale primes that track Δ);
//! - **rescale of a Δ¹ ciphertext** — the result would drop below the
//!   encoding scale and decrypt to noise.
//!
//! The wire format (`MADP`, [`Program::to_bytes`] / [`Program::from_bytes`])
//! is bounded and fail-closed: truncation, bad magic, unknown opcodes, and
//! oversized counts all surface as structured [`WireError`]s, never panics.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::cost::Cost;
use crate::matvec::MatVecShape;
use crate::primitives::CostModel;

/// Upper bound on register/operand name length (bytes).
pub const MAX_NAME_LEN: usize = 64;
/// Upper bound on declared inputs/outputs of each kind.
pub const MAX_DECLS: usize = 1024;
/// Upper bound on instruction count.
pub const MAX_INSTRS: usize = 65_536;
/// Upper bound on matrix slot count and diagonal offsets.
pub const MAX_SLOTS: usize = 1 << 20;

/// One CKKS primitive instruction over named registers.
///
/// `dst` may shadow an existing register (straight-line re-assignment);
/// sources always read the *current* value.
#[derive(Clone, Debug, PartialEq)]
pub enum Instr {
    /// `dst = a + b` (levels aligned to the minimum, scales must match).
    Add {
        /// Destination register.
        dst: String,
        /// Left source register.
        a: String,
        /// Right source register.
        b: String,
    },
    /// `dst = a - b`.
    Sub {
        /// Destination register.
        dst: String,
        /// Left source register.
        a: String,
        /// Right source register.
        b: String,
    },
    /// `dst = a ⊙ pt` — plaintext multiply *without* rescale; the
    /// executor encodes the named plaintext vector at `a`'s level and the
    /// scheme scale Δ, so the result carries one extra Δ factor.
    PtMult {
        /// Destination register.
        dst: String,
        /// Source register.
        a: String,
        /// Declared plaintext-vector operand.
        pt: String,
    },
    /// `dst = a · value` at auxiliary scale Δ, without rescale.
    MulConst {
        /// Destination register.
        dst: String,
        /// Source register.
        a: String,
        /// Real scalar factor.
        value: f64,
    },
    /// `dst = a + value` (same value in every slot; scale-preserving).
    AddConst {
        /// Destination register.
        dst: String,
        /// Source register.
        a: String,
        /// Real scalar addend.
        value: f64,
    },
    /// `dst = a ⊗ b` with relinearization and the trailing rescale
    /// (`Evaluator::mul_with_key`): one level consumed.
    Mult {
        /// Destination register.
        dst: String,
        /// Left source register.
        a: String,
        /// Right source register.
        b: String,
    },
    /// `dst = rot(a, steps)`; `steps == 0` is an explicit copy and needs
    /// no key. Consecutive rotations of one unmodified register form a
    /// hoisted run sharing a single ModUp (see [`hoisted_runs`]).
    Rotate {
        /// Destination register.
        dst: String,
        /// Source register.
        a: String,
        /// Slot-rotation step count (0 copies).
        steps: i64,
    },
    /// `dst = rescale(a)`: drop the last limb, dividing the scale by it.
    Rescale {
        /// Destination register.
        dst: String,
        /// Source register.
        a: String,
    },
    /// `dst = M · a` via the BSGS diagonal schedule (`apply_bsgs`) with
    /// `n1 = bsgs_baby_dim(diagonals)`; consumes one level (the trailing
    /// rescale is part of the schedule).
    BsgsMatVec {
        /// Destination register.
        dst: String,
        /// Source register.
        a: String,
        /// Declared diagonal-matrix operand.
        mat: String,
    },
    /// `dst = bootstrap(a)` to `to_level` limbs. Priced by the model's
    /// bootstrapping pipeline; the functional executor rejects it with a
    /// structured error (the reduced-parameter library has no functional
    /// bootstrap).
    Bootstrap {
        /// Destination register.
        dst: String,
        /// Source register.
        a: String,
        /// Limb count of the refreshed output.
        to_level: usize,
    },
}

impl Instr {
    /// Instruction mnemonic, used in reports and per-instruction labels.
    pub fn name(&self) -> &'static str {
        match self {
            Instr::Add { .. } => "Add",
            Instr::Sub { .. } => "Sub",
            Instr::PtMult { .. } => "PtMult",
            Instr::MulConst { .. } => "MulConst",
            Instr::AddConst { .. } => "AddConst",
            Instr::Mult { .. } => "Mult",
            Instr::Rotate { .. } => "Rotate",
            Instr::Rescale { .. } => "Rescale",
            Instr::BsgsMatVec { .. } => "BsgsMatVec",
            Instr::Bootstrap { .. } => "Bootstrap",
        }
    }

    /// Destination register name.
    pub fn dst(&self) -> &str {
        match self {
            Instr::Add { dst, .. }
            | Instr::Sub { dst, .. }
            | Instr::PtMult { dst, .. }
            | Instr::MulConst { dst, .. }
            | Instr::AddConst { dst, .. }
            | Instr::Mult { dst, .. }
            | Instr::Rotate { dst, .. }
            | Instr::Rescale { dst, .. }
            | Instr::BsgsMatVec { dst, .. }
            | Instr::Bootstrap { dst, .. } => dst,
        }
    }
}

/// A declared ciphertext input: name plus the limb count it arrives at
/// (the nominal scale is always Δ — fresh encryptions).
#[derive(Clone, Debug, PartialEq)]
pub struct CtDecl {
    /// Register name.
    pub name: String,
    /// Limb count the ciphertext must arrive with.
    pub level: usize,
}

/// A declared read-only plaintext-vector operand (encoded on the fly at
/// the consuming instruction's level).
#[derive(Clone, Debug, PartialEq)]
pub struct PtDecl {
    /// Operand name.
    pub name: String,
}

/// A declared diagonal matrix for `BsgsMatVec`: the *shape* (slot count
/// and non-zero diagonal offsets) lives in the program so the key
/// manifest and the price are derivable statically; the diagonal values
/// are bound at execution time.
#[derive(Clone, Debug, PartialEq)]
pub struct MatDecl {
    /// Operand name.
    pub name: String,
    /// Slot count of the transform (must match the context).
    pub slots: usize,
    /// Sorted non-zero-diagonal offsets, each `< slots`.
    pub offsets: Vec<usize>,
}

/// A straight-line encrypted program.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Program {
    /// Human-readable program name (reported, not semantic).
    pub name: String,
    /// Ciphertext inputs.
    pub ct_inputs: Vec<CtDecl>,
    /// Plaintext-vector operands.
    pub pt_inputs: Vec<PtDecl>,
    /// Diagonal-matrix operands.
    pub matrices: Vec<MatDecl>,
    /// Instruction stream.
    pub instrs: Vec<Instr>,
    /// Output register names, in reply order.
    pub outputs: Vec<String>,
}

/// Validation environment: the parameter facts the static checker needs.
#[derive(Clone, Copy, Debug)]
pub struct ProgramEnv {
    /// Limb-chain length of the target context (`CkksParams::levels`).
    pub levels: usize,
    /// Slot count of the target context.
    pub slots: usize,
}

/// Keys a program needs: relinearization and the exact Galois step set.
///
/// `BsgsMatVec` contributes the same steps `apply_bsgs` rotates by: all
/// baby steps `1..n1` plus each distinct non-zero giant step
/// `(offset / n1) · n1`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct KeyManifest {
    /// True when any `Mult` appears (relinearization key required).
    pub relin: bool,
    /// Sorted, de-duplicated rotation steps (step 0 never appears).
    pub galois_steps: Vec<i64>,
}

/// Role of an instruction in the rotation-hoisting schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HoistRole {
    /// Not part of a hoisted run (priced/executed standalone).
    Single,
    /// First rotation of a hoisted run of the given length (≥ 2): the
    /// shared Decomp+ModUp is charged here.
    Leader(usize),
    /// Subsequent rotation of a hoisted run: inner product + ModDown
    /// only.
    Follower,
}

/// Per-instruction facts the validator derives for the pricer and the
/// executor.
#[derive(Clone, Copy, Debug)]
pub struct InstrMeta {
    /// Working limb count: the level the primitive's arithmetic runs at
    /// (the minimum of the ciphertext operands at entry).
    pub ell: usize,
    /// Destination level after the instruction.
    pub out_level: usize,
    /// Destination nominal scale exponent (power of Δ).
    pub out_scale_exp: u32,
    /// Hoisting role of this instruction.
    pub hoist: HoistRole,
}

/// Result of [`Program::validate`].
#[derive(Clone, Debug)]
pub struct ProgramInfo {
    /// Keys the program requires.
    pub manifest: KeyManifest,
    /// One entry per instruction.
    pub instrs: Vec<InstrMeta>,
    /// `(level, scale_exp)` of each output, in `outputs` order.
    pub outputs: Vec<(usize, u32)>,
}

/// Static-validation failure: the program would underflow a level chain,
/// mix scales, or reference an undeclared operand.
#[derive(Clone, Debug, PartialEq)]
pub enum ValidateError {
    /// Two declarations share a name, or a name is empty/oversized.
    BadName(String),
    /// A declared input level is outside `1..=levels`.
    BadInputLevel {
        /// Offending input name.
        name: String,
        /// Declared level.
        level: usize,
    },
    /// A matrix declaration is empty, unsorted, or out of range.
    BadMatrix(String),
    /// An instruction reads a register never written.
    UnknownRegister {
        /// Instruction index.
        instr: usize,
        /// Missing register name.
        name: String,
    },
    /// An instruction references an undeclared plaintext operand.
    UnknownPlaintext {
        /// Instruction index.
        instr: usize,
        /// Missing operand name.
        name: String,
    },
    /// An instruction references an undeclared matrix operand.
    UnknownMatrix {
        /// Instruction index.
        instr: usize,
        /// Missing operand name.
        name: String,
    },
    /// An instruction needs more limbs than its operand has.
    LevelUnderflow {
        /// Instruction index.
        instr: usize,
        /// Limbs available.
        have: usize,
        /// Limbs required.
        need: usize,
    },
    /// `Add`/`Sub` operands carry different nominal scale exponents.
    ScaleMismatch {
        /// Instruction index.
        instr: usize,
        /// Left operand's Δ exponent.
        a: u32,
        /// Right operand's Δ exponent.
        b: u32,
    },
    /// Rescaling would drop the nominal scale below Δ.
    ScaleUnderflow {
        /// Instruction index.
        instr: usize,
    },
    /// A scalar constant is NaN or infinite.
    NonFiniteConst {
        /// Instruction index.
        instr: usize,
    },
    /// A `Bootstrap` target level is outside `1..=levels`.
    BadBootstrapTarget {
        /// Instruction index.
        instr: usize,
        /// Requested target level.
        to_level: usize,
    },
    /// The program has no instructions or no outputs.
    Empty,
    /// An output names a register never written.
    UnknownOutput(String),
    /// A structural bound (instruction/declaration count) is exceeded.
    TooLarge(&'static str),
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::BadName(n) => write!(f, "bad operand name `{n}`"),
            ValidateError::BadInputLevel { name, level } => {
                write!(f, "input `{name}` declares invalid level {level}")
            }
            ValidateError::BadMatrix(n) => write!(f, "matrix `{n}` has a bad shape"),
            ValidateError::UnknownRegister { instr, name } => {
                write!(f, "instr {instr}: unknown register `{name}`")
            }
            ValidateError::UnknownPlaintext { instr, name } => {
                write!(f, "instr {instr}: unknown plaintext `{name}`")
            }
            ValidateError::UnknownMatrix { instr, name } => {
                write!(f, "instr {instr}: unknown matrix `{name}`")
            }
            ValidateError::LevelUnderflow { instr, have, need } => {
                write!(
                    f,
                    "instr {instr}: level underflow ({have} limbs, need {need})"
                )
            }
            ValidateError::ScaleMismatch { instr, a, b } => {
                write!(f, "instr {instr}: scale mismatch (Δ^{a} vs Δ^{b})")
            }
            ValidateError::ScaleUnderflow { instr } => {
                write!(f, "instr {instr}: rescale would drop below Δ")
            }
            ValidateError::NonFiniteConst { instr } => {
                write!(f, "instr {instr}: non-finite constant")
            }
            ValidateError::BadBootstrapTarget { instr, to_level } => {
                write!(f, "instr {instr}: bad bootstrap target level {to_level}")
            }
            ValidateError::Empty => write!(f, "program has no instructions or no outputs"),
            ValidateError::UnknownOutput(n) => write!(f, "output `{n}` never written"),
            ValidateError::TooLarge(what) => write!(f, "program exceeds the {what} bound"),
        }
    }
}

impl std::error::Error for ValidateError {}

/// Baby-step dimension of the BSGS schedule for `diagonals` non-zero
/// diagonals: the smallest power of two whose square covers the count.
/// Mirrors [`CostModel::bsgs_baby_dim`] so the manifest, the price, and
/// the executor agree on the schedule without a model in hand.
pub fn bsgs_baby_dim(diagonals: usize) -> usize {
    let mut n1 = 1usize;
    while n1 * n1 < diagonals {
        n1 <<= 1;
    }
    n1.max(1)
}

/// Galois steps `apply_bsgs` needs for a diagonal set under baby
/// dimension `n1`: every baby step `1..n1` plus each distinct non-zero
/// giant step, sorted.
pub fn bsgs_galois_steps(offsets: &[usize], n1: usize) -> Vec<i64> {
    let mut steps: BTreeSet<i64> = (1..n1 as i64).collect();
    for &d in offsets {
        let giant = (d / n1) * n1;
        if giant != 0 {
            steps.insert(giant as i64);
        }
    }
    steps.into_iter().collect()
}

/// The rotation-hoisting schedule: maximal runs (start index, length ≥ 2)
/// of consecutive `Rotate` instructions that read the same register with
/// non-zero steps, where no rotation before the last overwrites the
/// source. The executor shares one Decomp+ModUp per run
/// (`rotate_hoisted`); the pricer charges the run the same way.
pub fn hoisted_runs(instrs: &[Instr]) -> Vec<(usize, usize)> {
    let mut runs = Vec::new();
    let mut i = 0;
    while i < instrs.len() {
        let (src, dst0) = match &instrs[i] {
            Instr::Rotate { a, steps, dst } if *steps != 0 => (a.clone(), dst.clone()),
            _ => {
                i += 1;
                continue;
            }
        };
        let mut len = 1;
        let mut source_overwritten = dst0 == src;
        while !source_overwritten {
            match instrs.get(i + len) {
                Some(Instr::Rotate { a, steps, dst }) if *a == src && *steps != 0 => {
                    source_overwritten = *dst == src;
                    len += 1;
                }
                _ => break,
            }
        }
        if len >= 2 {
            runs.push((i, len));
        }
        i += len;
    }
    runs
}

impl Program {
    fn check_name(name: &str) -> Result<(), ValidateError> {
        if name.is_empty() || name.len() > MAX_NAME_LEN {
            return Err(ValidateError::BadName(name.to_string()));
        }
        Ok(())
    }

    /// Statically checks the program and derives the per-instruction
    /// levels, scales, hoisting schedule, and key manifest.
    pub fn validate(&self, env: &ProgramEnv) -> Result<ProgramInfo, ValidateError> {
        if self.instrs.is_empty() || self.outputs.is_empty() {
            return Err(ValidateError::Empty);
        }
        if self.instrs.len() > MAX_INSTRS {
            return Err(ValidateError::TooLarge("instruction-count"));
        }
        if self.ct_inputs.len() > MAX_DECLS
            || self.pt_inputs.len() > MAX_DECLS
            || self.matrices.len() > MAX_DECLS
            || self.outputs.len() > MAX_DECLS
        {
            return Err(ValidateError::TooLarge("declaration-count"));
        }

        // Declarations: unique names per namespace, sane shapes.
        let mut regs: BTreeMap<String, (usize, u32)> = BTreeMap::new();
        for d in &self.ct_inputs {
            Self::check_name(&d.name)?;
            if d.level == 0 || d.level > env.levels {
                return Err(ValidateError::BadInputLevel {
                    name: d.name.clone(),
                    level: d.level,
                });
            }
            if regs.insert(d.name.clone(), (d.level, 1)).is_some() {
                return Err(ValidateError::BadName(d.name.clone()));
            }
        }
        let mut pts = BTreeSet::new();
        for d in &self.pt_inputs {
            Self::check_name(&d.name)?;
            if !pts.insert(d.name.as_str()) {
                return Err(ValidateError::BadName(d.name.clone()));
            }
        }
        let mut mats: BTreeMap<&str, &MatDecl> = BTreeMap::new();
        for d in &self.matrices {
            Self::check_name(&d.name)?;
            let sorted = d.offsets.windows(2).all(|w| w[0] < w[1]);
            if d.offsets.is_empty()
                || !sorted
                || d.slots == 0
                || d.slots > MAX_SLOTS
                || d.slots != env.slots
                || d.offsets.iter().any(|&o| o >= d.slots)
            {
                return Err(ValidateError::BadMatrix(d.name.clone()));
            }
            if mats.insert(&d.name, d).is_some() {
                return Err(ValidateError::BadName(d.name.clone()));
            }
        }

        let mut manifest = KeyManifest::default();
        let mut galois: BTreeSet<i64> = BTreeSet::new();
        let mut metas = Vec::with_capacity(self.instrs.len());

        let read = |regs: &BTreeMap<String, (usize, u32)>,
                    idx: usize,
                    name: &str|
         -> Result<(usize, u32), ValidateError> {
            regs.get(name)
                .copied()
                .ok_or_else(|| ValidateError::UnknownRegister {
                    instr: idx,
                    name: name.to_string(),
                })
        };

        for (idx, instr) in self.instrs.iter().enumerate() {
            Self::check_name(instr.dst())?;
            let (ell, out_level, out_exp) = match instr {
                Instr::Add { a, b, .. } | Instr::Sub { a, b, .. } => {
                    let (la, ea) = read(&regs, idx, a)?;
                    let (lb, eb) = read(&regs, idx, b)?;
                    if ea != eb {
                        return Err(ValidateError::ScaleMismatch {
                            instr: idx,
                            a: ea,
                            b: eb,
                        });
                    }
                    let ell = la.min(lb);
                    (ell, ell, ea)
                }
                Instr::PtMult { a, pt, .. } => {
                    let (la, ea) = read(&regs, idx, a)?;
                    if !pts.contains(pt.as_str()) {
                        return Err(ValidateError::UnknownPlaintext {
                            instr: idx,
                            name: pt.clone(),
                        });
                    }
                    (la, la, ea + 1)
                }
                Instr::MulConst { a, value, .. } => {
                    if !value.is_finite() {
                        return Err(ValidateError::NonFiniteConst { instr: idx });
                    }
                    let (la, ea) = read(&regs, idx, a)?;
                    (la, la, ea + 1)
                }
                Instr::AddConst { a, value, .. } => {
                    if !value.is_finite() {
                        return Err(ValidateError::NonFiniteConst { instr: idx });
                    }
                    let (la, ea) = read(&regs, idx, a)?;
                    (la, la, ea)
                }
                Instr::Mult { a, b, .. } => {
                    let (la, ea) = read(&regs, idx, a)?;
                    let (lb, eb) = read(&regs, idx, b)?;
                    let ell = la.min(lb);
                    if ell < 2 {
                        return Err(ValidateError::LevelUnderflow {
                            instr: idx,
                            have: ell,
                            need: 2,
                        });
                    }
                    manifest.relin = true;
                    (ell, ell - 1, ea + eb - 1)
                }
                Instr::Rotate { a, steps, .. } => {
                    let (la, ea) = read(&regs, idx, a)?;
                    if *steps != 0 {
                        galois.insert(*steps);
                    }
                    (la, la, ea)
                }
                Instr::Rescale { a, .. } => {
                    let (la, ea) = read(&regs, idx, a)?;
                    if la < 2 {
                        return Err(ValidateError::LevelUnderflow {
                            instr: idx,
                            have: la,
                            need: 2,
                        });
                    }
                    if ea < 2 {
                        return Err(ValidateError::ScaleUnderflow { instr: idx });
                    }
                    (la, la - 1, ea - 1)
                }
                Instr::BsgsMatVec { a, mat, .. } => {
                    let (la, ea) = read(&regs, idx, a)?;
                    let decl =
                        *mats
                            .get(mat.as_str())
                            .ok_or_else(|| ValidateError::UnknownMatrix {
                                instr: idx,
                                name: mat.clone(),
                            })?;
                    if la < 2 {
                        return Err(ValidateError::LevelUnderflow {
                            instr: idx,
                            have: la,
                            need: 2,
                        });
                    }
                    let n1 = bsgs_baby_dim(decl.offsets.len());
                    galois.extend(bsgs_galois_steps(&decl.offsets, n1));
                    (la, la - 1, ea)
                }
                Instr::Bootstrap { a, to_level, .. } => {
                    let (la, _) = read(&regs, idx, a)?;
                    if *to_level == 0 || *to_level > env.levels {
                        return Err(ValidateError::BadBootstrapTarget {
                            instr: idx,
                            to_level: *to_level,
                        });
                    }
                    (la, *to_level, 1)
                }
            };
            regs.insert(instr.dst().to_string(), (out_level, out_exp));
            metas.push(InstrMeta {
                ell,
                out_level,
                out_scale_exp: out_exp,
                hoist: HoistRole::Single,
            });
        }

        for (start, len) in hoisted_runs(&self.instrs) {
            metas[start].hoist = HoistRole::Leader(len);
            for m in metas.iter_mut().skip(start + 1).take(len - 1) {
                m.hoist = HoistRole::Follower;
            }
        }

        let mut outputs = Vec::with_capacity(self.outputs.len());
        for name in &self.outputs {
            let state = regs
                .get(name)
                .copied()
                .ok_or_else(|| ValidateError::UnknownOutput(name.clone()))?;
            outputs.push(state);
        }

        manifest.galois_steps = galois.into_iter().collect();
        Ok(ProgramInfo {
            manifest,
            instrs: metas,
            outputs,
        })
    }
}

// ---------------------------------------------------------------------------
// Pricing
// ---------------------------------------------------------------------------

/// Price of one instruction.
#[derive(Clone, Debug)]
pub struct InstrCost {
    /// `"<index>:<mnemonic>@<ell>"`.
    pub label: String,
    /// Modeled compute + DRAM cost.
    pub cost: Cost,
    /// Modeled whole-limb forward NTT transforms.
    pub ntt_fwd: u64,
    /// Modeled whole-limb inverse NTT transforms.
    pub ntt_inv: u64,
}

/// Modeled price of a whole program: the fold of the per-primitive costs
/// over the instruction stream, including the executor's on-the-fly
/// plaintext encodes (each one `ell` forward limb NTTs).
#[derive(Clone, Debug, Default)]
pub struct ProgramCost {
    /// Total modeled cost.
    pub cost: Cost,
    /// Total modeled forward transforms.
    pub ntt_fwd: u64,
    /// Total modeled inverse transforms.
    pub ntt_inv: u64,
    /// Forward limb NTTs spent encoding plaintext operands on the fly
    /// (already included in `cost`/`ntt_fwd`; reported for visibility).
    pub encode_limb_ntts: u64,
    /// Per-instruction breakdown.
    pub per_instr: Vec<InstrCost>,
}

/// Transform counts of a full key switch at `ell` limbs: β digit ModUps
/// plus two ModDowns. (Mirrors the `validate` binary's accounting.)
pub fn keyswitch_transforms(m: &CostModel, ell: usize) -> (u64, u64) {
    let (fwd, inv) = modup_transforms(m, ell);
    let (f, i) = m.mod_down_transforms(ell, m.params.special_limbs());
    (fwd + 2 * f, inv + 2 * i)
}

/// ModUp-only transform counts (the `Decomp` + raise phase).
pub fn modup_transforms(m: &CostModel, ell: usize) -> (u64, u64) {
    let (mut fwd, mut inv) = (0, 0);
    for j in 0..m.params.beta_at(ell) {
        let (f, i) = m.mod_up_transforms(ell, m.digit_width(ell, j));
        fwd += f;
        inv += i;
    }
    (fwd, inv)
}

/// Model of the `Decomp` + `ModUp` phase (everything in a key switch
/// before the inner product).
pub fn modup_cost(m: &CostModel, ell: usize) -> Cost {
    let mut c = m.decomp(ell);
    for j in 0..m.params.beta_at(ell) {
        c += m.mod_up_digit(ell, m.digit_width(ell, j));
    }
    c
}

/// Transform counts of the BSGS schedule: one shared ModUp, `n1` ModDown
/// pairs, `n2 − 1` full rotates, one rescale.
pub fn bsgs_transforms(m: &CostModel, shape: MatVecShape, n1: usize) -> (u64, u64) {
    let n2 = shape.diagonals.div_ceil(n1);
    let (mut fwd, mut inv) = modup_transforms(m, shape.ell);
    let (f, i) = m.mod_down_transforms(shape.ell, m.params.special_limbs());
    fwd += 2 * f * n1 as u64;
    inv += 2 * i * n1 as u64;
    for _ in 0..n2.saturating_sub(1) {
        let (f, i) = keyswitch_transforms(m, shape.ell);
        fwd += f;
        inv += i;
    }
    let (f, i) = m.rescale_transforms(shape.ell);
    (fwd + f, inv + i)
}

impl CostModel {
    /// Prices a validated program by folding the per-primitive costs of
    /// Table 2 over the instruction stream. Hoisted rotation runs charge
    /// the shared Decomp+ModUp once (the leader) and only the inner
    /// product, ModDown pair, and final addition per member — exactly the
    /// schedule the `fhe-program` executor runs.
    pub fn program_cost(&self, program: &Program, info: &ProgramInfo) -> ProgramCost {
        let n = self.params.degree();
        let limb = self.params.limb_bytes();
        let encode = |count: u64, ell: usize| -> (Cost, u64) {
            let transforms = count * ell as u64;
            let mut c = self.ntt_limb_ops() * transforms;
            c.pt_read += count * ell as u64 * limb;
            (c, transforms)
        };
        let mats: BTreeMap<&str, &MatDecl> = program
            .matrices
            .iter()
            .map(|d| (d.name.as_str(), d))
            .collect();
        let mut total = ProgramCost::default();
        for (idx, (instr, meta)) in program.instrs.iter().zip(&info.instrs).enumerate() {
            let ell = meta.ell;
            let mut cost = Cost::ZERO;
            let (mut fwd, mut inv) = (0u64, 0u64);
            let add_t =
                |c: &mut Cost, extra: Cost, (f, i): (u64, u64), fwd: &mut u64, inv: &mut u64| {
                    *c += extra;
                    *fwd += f;
                    *inv += i;
                };
            match instr {
                Instr::Add { .. } | Instr::Sub { .. } => cost += self.add(ell),
                Instr::PtMult { .. } => {
                    // On-the-fly encode of the plaintext operand, then the
                    // pointwise product (no rescale).
                    let (c, f) = encode(1, ell);
                    cost += c;
                    fwd += f;
                    total.encode_limb_ntts += f;
                    cost += self.pt_mult_no_rescale(ell);
                }
                Instr::MulConst { .. } => cost += self.pt_mult_no_rescale(ell),
                Instr::AddConst { .. } => {
                    // Scalar add touches c0 only: N·ℓ modular adds.
                    cost += Cost {
                        adds: n * ell as u64,
                        ct_read: ell as u64 * limb,
                        ct_write: ell as u64 * limb,
                        ..Cost::ZERO
                    };
                }
                Instr::Mult { .. } => {
                    add_t(
                        &mut cost,
                        self.mult(ell),
                        keyswitch_transforms(self, ell),
                        &mut fwd,
                        &mut inv,
                    );
                    add_t(
                        &mut cost,
                        Cost::ZERO,
                        self.rescale_transforms(ell),
                        &mut fwd,
                        &mut inv,
                    );
                }
                Instr::Rotate { steps, .. } => {
                    if *steps != 0 {
                        match meta.hoist {
                            HoistRole::Single => {
                                add_t(
                                    &mut cost,
                                    self.rotate(ell),
                                    keyswitch_transforms(self, ell),
                                    &mut fwd,
                                    &mut inv,
                                );
                            }
                            HoistRole::Leader(_) => {
                                add_t(
                                    &mut cost,
                                    modup_cost(self, ell),
                                    modup_transforms(self, ell),
                                    &mut fwd,
                                    &mut inv,
                                );
                                let (c, t) = self.hoisted_member_cost(ell);
                                add_t(&mut cost, c, t, &mut fwd, &mut inv);
                            }
                            HoistRole::Follower => {
                                let (c, t) = self.hoisted_member_cost(ell);
                                add_t(&mut cost, c, t, &mut fwd, &mut inv);
                            }
                        }
                    }
                }
                Instr::Rescale { .. } => {
                    add_t(
                        &mut cost,
                        self.rescale(ell),
                        self.rescale_transforms(ell),
                        &mut fwd,
                        &mut inv,
                    );
                }
                Instr::BsgsMatVec { mat, .. } => {
                    let decl = mats[mat.as_str()];
                    let shape = MatVecShape {
                        ell,
                        diagonals: decl.offsets.len(),
                    };
                    let n1 = self.bsgs_baby_dim(shape.diagonals);
                    add_t(
                        &mut cost,
                        self.pt_mat_vec_mult(shape).cost,
                        bsgs_transforms(self, shape, n1),
                        &mut fwd,
                        &mut inv,
                    );
                    let (c, f) = encode(shape.diagonals as u64, ell);
                    cost += c;
                    fwd += f;
                    total.encode_limb_ntts += f;
                }
                Instr::Bootstrap { .. } => {
                    // The bootstrap pipeline needs a chain deeper than its
                    // own depth; shallower parameter sets price it at zero
                    // rather than panicking (the functional executor
                    // rejects `Bootstrap` outright either way).
                    let depth = 2 * self.params.fft_iter + 2 + crate::bootstrap::EVAL_MOD_DEPTH;
                    if self.params.limbs > depth {
                        cost += self.bootstrap_from(ell).cost;
                    }
                }
            }
            total.cost += cost;
            total.ntt_fwd += fwd;
            total.ntt_inv += inv;
            total.per_instr.push(InstrCost {
                label: format!("{idx}:{}@{ell}", instr.name()),
                cost,
                ntt_fwd: fwd,
                ntt_inv: inv,
            });
        }
        total
    }

    /// Per-rotation cost inside a hoisted run: the digit automorphism
    /// (fused, compute-free), the KSK inner product, the ModDown pair,
    /// and the final `σ(c0)` addition — everything in `rotate` except the
    /// shared Decomp+ModUp.
    fn hoisted_member_cost(&self, ell: usize) -> (Cost, (u64, u64)) {
        let n = self.params.degree();
        let limb = self.params.limb_bytes();
        let beta = self.params.beta_at(ell);
        let mut c = self.automorph(ell, false);
        c += self.ksk_inner_product(ell, beta, true, true);
        c += self.mod_down(ell, self.params.special_limbs()) * 2;
        c += Cost {
            adds: n * ell as u64,
            ct_read: 2 * ell as u64 * limb,
            ct_write: ell as u64 * limb,
            ..Cost::ZERO
        };
        let (f, i) = self.mod_down_transforms(ell, self.params.special_limbs());
        (c, (2 * f, 2 * i))
    }
}

// ---------------------------------------------------------------------------
// Wire format
// ---------------------------------------------------------------------------

/// Wire-format magic: `MADP` (program), companion to the ciphertext
/// format's `MADf`.
pub const WIRE_MAGIC: [u8; 4] = *b"MADP";
/// Wire-format version.
pub const WIRE_VERSION: u16 = 1;

/// Structured decode failure. Decoding never panics: every malformed,
/// truncated, or oversized input maps to one of these.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before the structure was complete.
    Truncated,
    /// Leading magic was not `MADP`.
    BadMagic,
    /// Unknown format version.
    Version(u16),
    /// Unknown instruction opcode.
    Opcode(u8),
    /// A name was empty, oversized, or not UTF-8.
    BadString,
    /// A count or offset exceeded its structural bound.
    Limit(&'static str),
    /// Bytes remained after the complete structure.
    TrailingBytes,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated program"),
            WireError::BadMagic => write!(f, "bad program magic"),
            WireError::Version(v) => write!(f, "unsupported program version {v}"),
            WireError::Opcode(op) => write!(f, "unknown program opcode {op:#04x}"),
            WireError::BadString => write!(f, "bad name string"),
            WireError::Limit(what) => write!(f, "{what} bound exceeded"),
            WireError::TrailingBytes => write!(f, "trailing bytes after program"),
        }
    }
}

impl std::error::Error for WireError {}

const OP_ADD: u8 = 1;
const OP_SUB: u8 = 2;
const OP_PT_MULT: u8 = 3;
const OP_MUL_CONST: u8 = 4;
const OP_ADD_CONST: u8 = 5;
const OP_MULT: u8 = 6;
const OP_ROTATE: u8 = 7;
const OP_RESCALE: u8 = 8;
const OP_BSGS: u8 = 9;
const OP_BOOTSTRAP: u8 = 10;

fn put_str(out: &mut Vec<u8>, s: &str) {
    debug_assert!(!s.is_empty() && s.len() <= MAX_NAME_LEN);
    out.push(s.len() as u8);
    out.extend_from_slice(s.as_bytes());
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn string(&mut self) -> Result<String, WireError> {
        let len = self.u8()? as usize;
        if len == 0 || len > MAX_NAME_LEN {
            return Err(WireError::BadString);
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadString)
    }
}

impl Program {
    /// Serializes the program (`MADP` v1, little-endian, bounded).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.instrs.len() * 16);
        out.extend_from_slice(&WIRE_MAGIC);
        out.extend_from_slice(&WIRE_VERSION.to_le_bytes());
        put_str(
            &mut out,
            if self.name.is_empty() {
                "p"
            } else {
                &self.name
            },
        );
        out.extend_from_slice(&(self.ct_inputs.len() as u16).to_le_bytes());
        for d in &self.ct_inputs {
            put_str(&mut out, &d.name);
            out.push(d.level as u8);
        }
        out.extend_from_slice(&(self.pt_inputs.len() as u16).to_le_bytes());
        for d in &self.pt_inputs {
            put_str(&mut out, &d.name);
        }
        out.extend_from_slice(&(self.matrices.len() as u16).to_le_bytes());
        for d in &self.matrices {
            put_str(&mut out, &d.name);
            out.extend_from_slice(&(d.slots as u32).to_le_bytes());
            out.extend_from_slice(&(d.offsets.len() as u16).to_le_bytes());
            for &o in &d.offsets {
                out.extend_from_slice(&(o as u32).to_le_bytes());
            }
        }
        out.extend_from_slice(&(self.instrs.len() as u32).to_le_bytes());
        for instr in &self.instrs {
            match instr {
                Instr::Add { dst, a, b } => {
                    out.push(OP_ADD);
                    put_str(&mut out, dst);
                    put_str(&mut out, a);
                    put_str(&mut out, b);
                }
                Instr::Sub { dst, a, b } => {
                    out.push(OP_SUB);
                    put_str(&mut out, dst);
                    put_str(&mut out, a);
                    put_str(&mut out, b);
                }
                Instr::PtMult { dst, a, pt } => {
                    out.push(OP_PT_MULT);
                    put_str(&mut out, dst);
                    put_str(&mut out, a);
                    put_str(&mut out, pt);
                }
                Instr::MulConst { dst, a, value } => {
                    out.push(OP_MUL_CONST);
                    put_str(&mut out, dst);
                    put_str(&mut out, a);
                    out.extend_from_slice(&value.to_bits().to_le_bytes());
                }
                Instr::AddConst { dst, a, value } => {
                    out.push(OP_ADD_CONST);
                    put_str(&mut out, dst);
                    put_str(&mut out, a);
                    out.extend_from_slice(&value.to_bits().to_le_bytes());
                }
                Instr::Mult { dst, a, b } => {
                    out.push(OP_MULT);
                    put_str(&mut out, dst);
                    put_str(&mut out, a);
                    put_str(&mut out, b);
                }
                Instr::Rotate { dst, a, steps } => {
                    out.push(OP_ROTATE);
                    put_str(&mut out, dst);
                    put_str(&mut out, a);
                    out.extend_from_slice(&steps.to_le_bytes());
                }
                Instr::Rescale { dst, a } => {
                    out.push(OP_RESCALE);
                    put_str(&mut out, dst);
                    put_str(&mut out, a);
                }
                Instr::BsgsMatVec { dst, a, mat } => {
                    out.push(OP_BSGS);
                    put_str(&mut out, dst);
                    put_str(&mut out, a);
                    put_str(&mut out, mat);
                }
                Instr::Bootstrap { dst, a, to_level } => {
                    out.push(OP_BOOTSTRAP);
                    put_str(&mut out, dst);
                    put_str(&mut out, a);
                    out.push(*to_level as u8);
                }
            }
        }
        out.extend_from_slice(&(self.outputs.len() as u16).to_le_bytes());
        for o in &self.outputs {
            put_str(&mut out, o);
        }
        out
    }

    /// Decodes a program, rejecting every malformed input with a
    /// structured [`WireError`]. The decoded program is *structurally*
    /// sound; semantic soundness (levels, scales, operand references) is
    /// [`Program::validate`]'s job.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader { buf: bytes, pos: 0 };
        if r.take(4)? != WIRE_MAGIC {
            return Err(WireError::BadMagic);
        }
        let version = r.u16()?;
        if version != WIRE_VERSION {
            return Err(WireError::Version(version));
        }
        let name = r.string()?;
        let n_ct = r.u16()? as usize;
        if n_ct > MAX_DECLS {
            return Err(WireError::Limit("ciphertext-input count"));
        }
        let mut ct_inputs = Vec::with_capacity(n_ct);
        for _ in 0..n_ct {
            let name = r.string()?;
            let level = r.u8()? as usize;
            ct_inputs.push(CtDecl { name, level });
        }
        let n_pt = r.u16()? as usize;
        if n_pt > MAX_DECLS {
            return Err(WireError::Limit("plaintext-input count"));
        }
        let mut pt_inputs = Vec::with_capacity(n_pt);
        for _ in 0..n_pt {
            pt_inputs.push(PtDecl { name: r.string()? });
        }
        let n_mat = r.u16()? as usize;
        if n_mat > MAX_DECLS {
            return Err(WireError::Limit("matrix count"));
        }
        let mut matrices = Vec::with_capacity(n_mat);
        for _ in 0..n_mat {
            let name = r.string()?;
            let slots = r.u32()? as usize;
            if slots == 0 || slots > MAX_SLOTS {
                return Err(WireError::Limit("matrix slot"));
            }
            let n_off = r.u16()? as usize;
            if n_off > MAX_SLOTS {
                return Err(WireError::Limit("matrix diagonal count"));
            }
            let mut offsets = Vec::with_capacity(n_off);
            for _ in 0..n_off {
                let o = r.u32()? as usize;
                if o >= MAX_SLOTS {
                    return Err(WireError::Limit("matrix diagonal offset"));
                }
                offsets.push(o);
            }
            matrices.push(MatDecl {
                name,
                slots,
                offsets,
            });
        }
        let n_instr = r.u32()? as usize;
        if n_instr > MAX_INSTRS {
            return Err(WireError::Limit("instruction count"));
        }
        let mut instrs = Vec::with_capacity(n_instr.min(4096));
        for _ in 0..n_instr {
            let op = r.u8()?;
            let dst = r.string()?;
            let a = r.string()?;
            let instr = match op {
                OP_ADD => Instr::Add {
                    dst,
                    a,
                    b: r.string()?,
                },
                OP_SUB => Instr::Sub {
                    dst,
                    a,
                    b: r.string()?,
                },
                OP_PT_MULT => Instr::PtMult {
                    dst,
                    a,
                    pt: r.string()?,
                },
                OP_MUL_CONST => Instr::MulConst {
                    dst,
                    a,
                    value: f64::from_bits(r.u64()?),
                },
                OP_ADD_CONST => Instr::AddConst {
                    dst,
                    a,
                    value: f64::from_bits(r.u64()?),
                },
                OP_MULT => Instr::Mult {
                    dst,
                    a,
                    b: r.string()?,
                },
                OP_ROTATE => Instr::Rotate {
                    dst,
                    a,
                    steps: r.u64()? as i64,
                },
                OP_RESCALE => Instr::Rescale { dst, a },
                OP_BSGS => Instr::BsgsMatVec {
                    dst,
                    a,
                    mat: r.string()?,
                },
                OP_BOOTSTRAP => Instr::Bootstrap {
                    dst,
                    a,
                    to_level: r.u8()? as usize,
                },
                other => return Err(WireError::Opcode(other)),
            };
            instrs.push(instr);
        }
        let n_out = r.u16()? as usize;
        if n_out > MAX_DECLS {
            return Err(WireError::Limit("output count"));
        }
        let mut outputs = Vec::with_capacity(n_out);
        for _ in 0..n_out {
            outputs.push(r.string()?);
        }
        if r.pos != bytes.len() {
            return Err(WireError::TrailingBytes);
        }
        Ok(Program {
            name,
            ct_inputs,
            pt_inputs,
            matrices,
            instrs,
            outputs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opts::{AlgoOpts, CachingLevel, MadConfig};
    use crate::params::SchemeParams;

    fn env() -> ProgramEnv {
        ProgramEnv {
            levels: 5,
            slots: 32,
        }
    }

    fn small_program() -> Program {
        Program {
            name: "demo".into(),
            ct_inputs: vec![
                CtDecl {
                    name: "x".into(),
                    level: 5,
                },
                CtDecl {
                    name: "y".into(),
                    level: 5,
                },
            ],
            pt_inputs: vec![],
            matrices: vec![MatDecl {
                name: "M".into(),
                slots: 32,
                offsets: vec![0, 1, 5],
            }],
            instrs: vec![
                Instr::Mult {
                    dst: "p".into(),
                    a: "x".into(),
                    b: "y".into(),
                },
                Instr::Rotate {
                    dst: "r1".into(),
                    a: "p".into(),
                    steps: 2,
                },
                Instr::Rotate {
                    dst: "r2".into(),
                    a: "p".into(),
                    steps: 13,
                },
                Instr::Add {
                    dst: "s".into(),
                    a: "r1".into(),
                    b: "r2".into(),
                },
                Instr::BsgsMatVec {
                    dst: "t".into(),
                    a: "s".into(),
                    mat: "M".into(),
                },
                Instr::MulConst {
                    dst: "u".into(),
                    a: "t".into(),
                    value: 0.5,
                },
                Instr::Rescale {
                    dst: "out".into(),
                    a: "u".into(),
                },
            ],
            outputs: vec!["out".into()],
        }
    }

    #[test]
    fn validates_levels_scales_and_manifest() {
        let p = small_program();
        let info = p.validate(&env()).expect("valid program");
        // Mult burns one level; BSGS another; final rescale a third.
        assert_eq!(info.outputs, vec![(2, 1)]);
        assert!(info.manifest.relin);
        // Rotations 2, 13 plus BSGS (3 diagonals → n1 = 2): baby 1,
        // giant 4 (offset 5 → (5/2)·2 = 4).
        assert_eq!(info.manifest.galois_steps, vec![1, 2, 4, 13]);
        // The two consecutive rotations of `p` form one hoisted run.
        assert_eq!(info.instrs[1].hoist, HoistRole::Leader(2));
        assert_eq!(info.instrs[2].hoist, HoistRole::Follower);
        assert_eq!(info.instrs[0].hoist, HoistRole::Single);
    }

    #[test]
    fn rejects_level_underflow() {
        let mut p = small_program();
        p.ct_inputs[0].level = 2;
        p.ct_inputs[1].level = 2;
        // Mult drops to 1; BSGS then underflows.
        let err = p.validate(&env()).unwrap_err();
        assert!(matches!(err, ValidateError::LevelUnderflow { .. }), "{err}");
    }

    #[test]
    fn rejects_scale_mismatch() {
        let p = Program {
            name: "bad".into(),
            ct_inputs: vec![
                CtDecl {
                    name: "x".into(),
                    level: 5,
                },
                CtDecl {
                    name: "y".into(),
                    level: 5,
                },
            ],
            instrs: vec![
                Instr::MulConst {
                    dst: "x2".into(),
                    a: "x".into(),
                    value: 2.0,
                },
                // x2 is at Δ², y at Δ¹: adding them is a scale bug.
                Instr::Add {
                    dst: "s".into(),
                    a: "x2".into(),
                    b: "y".into(),
                },
            ],
            outputs: vec!["s".into()],
            ..Program::default()
        };
        let err = p.validate(&env()).unwrap_err();
        assert_eq!(
            err,
            ValidateError::ScaleMismatch {
                instr: 1,
                a: 2,
                b: 1
            }
        );
    }

    #[test]
    fn rejects_rescale_below_delta() {
        let p = Program {
            name: "bad".into(),
            ct_inputs: vec![CtDecl {
                name: "x".into(),
                level: 5,
            }],
            instrs: vec![Instr::Rescale {
                dst: "y".into(),
                a: "x".into(),
            }],
            outputs: vec!["y".into()],
            ..Program::default()
        };
        assert_eq!(
            p.validate(&env()).unwrap_err(),
            ValidateError::ScaleUnderflow { instr: 0 }
        );
    }

    #[test]
    fn rejects_unknown_operands() {
        let mut p = small_program();
        p.instrs.push(Instr::Add {
            dst: "z".into(),
            a: "nope".into(),
            b: "out".into(),
        });
        assert!(matches!(
            p.validate(&env()).unwrap_err(),
            ValidateError::UnknownRegister { .. }
        ));
        let mut p = small_program();
        p.outputs = vec!["missing".into()];
        assert!(matches!(
            p.validate(&env()).unwrap_err(),
            ValidateError::UnknownOutput(_)
        ));
    }

    #[test]
    fn hoisted_runs_break_on_source_overwrite() {
        let rot = |dst: &str, a: &str, steps: i64| Instr::Rotate {
            dst: dst.into(),
            a: a.into(),
            steps,
        };
        // Three rotations of x, but the second overwrites x: the run is
        // the first two only.
        let instrs = vec![rot("a", "x", 1), rot("x", "x", 2), rot("b", "x", 4)];
        assert_eq!(hoisted_runs(&instrs), vec![(0, 2)]);
        // Zero steps never join a run.
        let instrs = vec![rot("a", "x", 1), rot("b", "x", 0), rot("c", "x", 4)];
        assert_eq!(hoisted_runs(&instrs), vec![]);
        // Interleaving a non-rotate breaks the run.
        let instrs = vec![
            rot("a", "x", 1),
            Instr::Add {
                dst: "s".into(),
                a: "a".into(),
                b: "a".into(),
            },
            rot("b", "x", 4),
        ];
        assert_eq!(hoisted_runs(&instrs), vec![]);
    }

    #[test]
    fn bsgs_step_derivation_matches_schedule() {
        // 8 diagonals 0..8 → n1 = 4 (the nearest power of two with
        // n1² ≥ 8 biased large): babies 1..4, giants {4} (offsets 4..8).
        let offsets: Vec<usize> = (0..8).collect();
        let n1 = bsgs_baby_dim(8);
        assert_eq!(n1, 4);
        assert_eq!(bsgs_galois_steps(&offsets, n1), vec![1, 2, 3, 4]);
    }

    #[test]
    fn wire_round_trip() {
        let p = small_program();
        let bytes = p.to_bytes();
        let back = Program::from_bytes(&bytes).expect("round-trips");
        assert_eq!(p, back);
    }

    #[test]
    fn wire_rejects_malformed_inputs() {
        let bytes = small_program().to_bytes();
        // Truncation at every prefix is a structured error, never a panic.
        for cut in 0..bytes.len() {
            let err = Program::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    WireError::Truncated | WireError::BadString | WireError::BadMagic
                ),
                "cut {cut}: {err:?}"
            );
        }
        // Garbage tail.
        let mut tail = bytes.clone();
        tail.extend_from_slice(b"junk");
        assert_eq!(
            Program::from_bytes(&tail).unwrap_err(),
            WireError::TrailingBytes
        );
        // Bad magic / version / opcode.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(Program::from_bytes(&bad).unwrap_err(), WireError::BadMagic);
        let mut bad = bytes.clone();
        bad[4] = 9;
        assert_eq!(
            Program::from_bytes(&bad).unwrap_err(),
            WireError::Version(9)
        );
        assert!(Program::from_bytes(&[]).is_err());
    }

    #[test]
    fn pricing_folds_per_primitive_costs() {
        let p = small_program();
        let info = p.validate(&env()).expect("valid");
        let params = SchemeParams {
            log_n: 6,
            log_q: 30,
            limbs: 5,
            dnum: 2,
            fft_iter: 1,
        };
        let m = CostModel::new(
            params,
            MadConfig {
                caching: CachingLevel::OneLimb,
                algo: AlgoOpts {
                    modup_hoist: true,
                    ..AlgoOpts::none()
                },
            },
        );
        let priced = m.program_cost(&p, &info);
        assert_eq!(priced.per_instr.len(), p.instrs.len());
        // The fold equals the sum of the per-instruction rows.
        let sum: Cost = priced.per_instr.iter().map(|r| r.cost).sum();
        assert_eq!(sum.ops(), priced.cost.ops());
        // A hoisted pair prices strictly below two standalone rotates.
        let two_rotates = m.rotate(4) * 2;
        let pair: Cost = priced.per_instr[1..3].iter().map(|r| r.cost).sum();
        assert!(pair.ops() < two_rotates.ops(), "hoisting must save compute");
        // Encode NTTs are tracked: 3 BSGS diagonals at ℓ = 4.
        assert_eq!(priced.encode_limb_ntts, 12);
        // Bootstrap prices through the model's pipeline on a chain deep
        // enough to cover it (and at zero on shallow chains, without
        // panicking).
        let pb = Program {
            name: "boot".into(),
            ct_inputs: vec![CtDecl {
                name: "x".into(),
                level: 2,
            }],
            instrs: vec![Instr::Bootstrap {
                dst: "fresh".into(),
                a: "x".into(),
                to_level: 12,
            }],
            outputs: vec!["fresh".into()],
            ..Program::default()
        };
        let deep_env = ProgramEnv {
            levels: 24,
            slots: 32,
        };
        let info_b = pb.validate(&deep_env).expect("valid");
        assert_eq!(info_b.outputs, vec![(12, 1)]);
        let deep = CostModel::new(
            SchemeParams {
                limbs: 24,
                ..params
            },
            m.config,
        );
        assert!(deep.program_cost(&pb, &info_b).cost.ops() > 0);
        assert_eq!(m.program_cost(&pb, &info_b).cost.ops(), 0);
    }
}
