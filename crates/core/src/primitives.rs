//! The per-primitive cost model: modular-operation counts and DRAM
//! traffic for every CKKS primitive of Table 2 plus the key-switching
//! sub-operations (`Decomp`, `ModUp`, `KSKInnerProd`, `ModDown`).
//!
//! Compute counts follow the paper's convention (modular mults and adds;
//! an NTT butterfly is one mult and two adds). DRAM traffic is counted at
//! limb granularity and depends on the [`CachingLevel`]:
//!
//! - `Baseline`: every sub-operation is a separate pass — each limb it
//!   touches is read from and written to DRAM (Figure 1a).
//! - `OneLimb`: consecutive *limb-wise* sub-operations are fused into one
//!   pass over each limb (Figure 1b); slot-wise conversions still
//!   round-trip.
//! - `AlphaLimbs`: the slot-wise `NewLimb` conversions happen on-chip —
//!   source limbs are read once, generated limbs are NTT'd in-cache and
//!   written once.
//! - `LimbReorder`: additionally, limbs destined to be dropped by a
//!   following `ModDown` are consumed on the fly and never written out.
//!
//! (`BetaLimbs` acts at the `PtMatVecMult` level — see [`crate::matvec`].)

use crate::cost::Cost;
use crate::opts::{CachingLevel, MadConfig};
use crate::params::SchemeParams;

/// Cost model bound to a parameter set and a MAD configuration.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Scheme shape parameters.
    pub params: SchemeParams,
    /// MAD optimization configuration.
    pub config: MadConfig,
}

impl CostModel {
    /// Creates a model.
    pub fn new(params: SchemeParams, config: MadConfig) -> Self {
        Self { params, config }
    }

    #[inline]
    fn n(&self) -> u64 {
        self.params.degree()
    }

    #[inline]
    fn limb(&self) -> u64 {
        self.params.limb_bytes()
    }

    #[inline]
    fn fused(&self) -> bool {
        self.config.caches_at_least(CachingLevel::OneLimb)
    }

    #[inline]
    fn on_chip_conversion(&self) -> bool {
        self.config.caches_at_least(CachingLevel::AlphaLimbs)
    }

    #[inline]
    fn reorder(&self) -> bool {
        self.config.caches_at_least(CachingLevel::LimbReorder)
    }

    /// Ops of one limb NTT or iNTT.
    pub fn ntt_limb_ops(&self) -> Cost {
        let b = self.params.ntt_butterflies();
        Cost::compute(b, 2 * b)
    }

    /// Whole-limb transform counts `(forward NTTs, inverse NTTs)` of one
    /// digit `ModUp` — the unit the functional library's
    /// `fhe_math::ntt::counters` measure, used for cross-validation.
    pub fn mod_up_transforms(&self, ell: usize, digit_limbs: usize) -> (u64, u64) {
        let new = ell + self.params.special_limbs() - digit_limbs;
        (new as u64, digit_limbs as u64)
    }

    /// Whole-limb transform counts of one `ModDown` dropping `drop` limbs.
    pub fn mod_down_transforms(&self, ell: usize, drop: usize) -> (u64, u64) {
        let _ = self;
        (ell as u64, drop as u64)
    }

    /// Whole-limb transform counts of one two-polynomial `Rescale`.
    pub fn rescale_transforms(&self, ell: usize) -> (u64, u64) {
        let _ = self;
        (2 * (ell as u64 - 1), 2)
    }

    /// Ops of the slot-wise `NewLimb` conversion from `src` limbs into
    /// `dst` new limbs (Eq. 1): per coefficient, `src` mults to form the
    /// `y_i`, then `src` mults + `src` adds per target limb.
    pub fn newlimb_ops(&self, src: usize, dst: usize) -> Cost {
        let n = self.n();
        Cost::compute(
            n * src as u64 + n * (src * dst) as u64,
            n * (src * dst) as u64,
        )
    }

    /// `PtAdd` (Table 2): adds a plaintext to `c_0` only.
    pub fn pt_add(&self, ell: usize) -> Cost {
        let l = ell as u64;
        Cost {
            adds: self.n() * l,
            ct_read: 2 * l * self.limb(), // c_0 + plaintext
            ct_write: l * self.limb(),
            ..Cost::ZERO
        }
    }

    /// `Add` (Table 2).
    pub fn add(&self, ell: usize) -> Cost {
        let l = ell as u64;
        Cost {
            adds: 2 * self.n() * l,
            ct_read: 4 * l * self.limb(),
            ct_write: 2 * l * self.limb(),
            ..Cost::ZERO
        }
    }

    /// `Automorph`: a pure permutation — zero arithmetic, full ciphertext
    /// traffic (Table 4 charges it 0.1468 GB at ℓ = 35). When fused
    /// (O(1)-limb caching), the permutation rides along a neighbouring
    /// pass and costs nothing extra.
    pub fn automorph(&self, ell: usize, standalone: bool) -> Cost {
        if !standalone && self.fused() {
            return Cost::ZERO;
        }
        let l = ell as u64;
        Cost {
            ct_read: 2 * l * self.limb(),
            ct_write: 2 * l * self.limb(),
            ..Cost::ZERO
        }
    }

    /// `Decomp`: splits one polynomial into β digits, multiplying by the
    /// decomposition constants (2 mults per coefficient). Fusable.
    pub fn decomp(&self, ell: usize) -> Cost {
        let l = ell as u64;
        let traffic = if self.fused() { 0 } else { 2 * l * self.limb() };
        Cost {
            mults: 2 * self.n() * l,
            ct_read: traffic / 2,
            ct_write: traffic / 2,
            ..Cost::ZERO
        }
    }

    /// `ModUp` of one key-switching digit of `digit_limbs` limbs to the
    /// raised basis of `ell + k` limbs (Algorithm 1).
    pub fn mod_up_digit(&self, ell: usize, digit_limbs: usize) -> Cost {
        let k = self.params.special_limbs();
        let total = ell + k;
        let new = total - digit_limbs;
        let mut c = self.ntt_limb_ops() * digit_limbs as u64; // iNTT digit
        c += self.newlimb_ops(digit_limbs, new);
        c += self.ntt_limb_ops() * new as u64; // NTT generated limbs
        let limb = self.limb();
        let (d, nw) = (digit_limbs as u64, new as u64);
        if self.on_chip_conversion() {
            // Read the digit once; generate + NTT new limbs on-chip and
            // write them once.
            c.ct_read += d * limb;
            c.ct_write += nw * limb;
        } else {
            // iNTT pass (r+w digit), slot-wise NewLimb (read digit, write
            // new limbs in slot format), NTT pass (r+w new limbs).
            c.ct_read += (2 * d + nw) * limb;
            c.ct_write += (d + 2 * nw) * limb;
        }
        c
    }

    /// `KSKInnerProd`: multiply-accumulate `β` raised digits against the
    /// switching key (2 polynomials each), producing the raised pair
    /// `(û, v̂)`.
    ///
    /// `digit_reads_charged` lets callers that keep digits cached across
    /// rotations (β-limb caching in `PtMatVecMult`) charge the digit
    /// traffic once instead of per call. `write_output` is false when the
    /// raised pair is consumed immediately by a fused accumulator (ModDown
    /// hoisting) and never touches DRAM.
    pub fn ksk_inner_product(
        &self,
        ell: usize,
        beta: usize,
        digit_reads_charged: bool,
        write_output: bool,
    ) -> Cost {
        let k = self.params.special_limbs();
        let w = (ell + k) as u64;
        let b = beta as u64;
        let mut c = Cost::compute(2 * w * self.n() * b, 2 * w * self.n() * (b - 1));
        let limb = self.limb();
        if digit_reads_charged {
            c.ct_read += b * w * limb;
        }
        let key_bytes = 2 * b * w * limb;
        c.key_read += if self.config.algo.key_compression {
            key_bytes / 2
        } else {
            key_bytes
        };
        if write_output {
            // Output (û, v̂): with limb re-ordering the special limbs are
            // consumed by the following ModDown without a DRAM round-trip.
            let out_limbs = if self.reorder() {
                2 * ell as u64
            } else {
                2 * w
            };
            c.ct_write += out_limbs * limb;
        }
        c
    }

    /// `ModDown` from `ell + drop` limbs to `ell` (Algorithm 2), where
    /// `drop` is the special-limb count `k` (or `k + 1` when merged with
    /// `Rescale` — the paper's ModDown merge).
    pub fn mod_down(&self, ell: usize, drop: usize) -> Cost {
        let mut c = self.ntt_limb_ops() * drop as u64; // iNTT dropped limbs
        c += self.newlimb_ops(drop, ell);
        c += self.ntt_limb_ops() * ell as u64; // NTT converted limbs
        c += Cost::compute(self.n() * ell as u64, self.n() * ell as u64); // combine
        let limb = self.limb();
        let (l, d) = (ell as u64, drop as u64);
        if self.on_chip_conversion() {
            // Dropped limbs read once (or not at all with re-ordering,
            // when the producer kept them on-chip), originals read once,
            // output written once.
            if !self.reorder() {
                c.ct_read += d * limb;
            }
            c.ct_read += l * limb;
            c.ct_write += l * limb;
        } else if self.fused() {
            // iNTT pass on dropped limbs (r+w), slot-wise conversion
            // (read dropped, write converted), fused NTT+combine pass
            // (read converted + originals, write output).
            c.ct_read += (2 * d + 2 * l) * limb;
            c.ct_write += (d + 2 * l) * limb;
        } else {
            // Separate NTT and combine passes.
            c.ct_read += (2 * d + 3 * l) * limb;
            c.ct_write += (d + 3 * l) * limb;
        }
        c
    }

    /// `Rescale`: drop the last limb, dividing by it (the `ModDown`
    /// specialization with a single dropped limb and no special basis).
    pub fn rescale(&self, ell: usize) -> Cost {
        assert!(ell >= 2, "rescale needs a limb to drop");
        // Two polynomials.
        let per_poly = {
            let mut c = self.ntt_limb_ops(); // iNTT dropped limb
            c += self.newlimb_ops(1, ell - 1);
            c += self.ntt_limb_ops() * (ell - 1) as u64;
            c += Cost::compute(self.n() * (ell - 1) as u64, self.n() * (ell - 1) as u64);
            let limb = self.limb();
            let l1 = (ell - 1) as u64;
            if self.fused() {
                c.ct_read += (1 + l1) * limb;
                c.ct_write += l1 * limb;
            } else {
                c.ct_read += (2 + 2 * l1) * limb;
                c.ct_write += (1 + 2 * l1) * limb;
            }
            c
        };
        per_poly * 2
    }

    /// `PtMult` without the trailing rescale: 2·N·ℓ mults, reads both
    /// ciphertext polynomials and the plaintext, writes both.
    pub fn pt_mult_no_rescale(&self, ell: usize) -> Cost {
        let l = ell as u64;
        Cost {
            mults: 2 * self.n() * l,
            ct_read: 2 * l * self.limb(),
            pt_read: l * self.limb(),
            ct_write: 2 * l * self.limb(),
            ..Cost::ZERO
        }
    }

    /// `PtMult` (Table 2): plaintext multiplication + `Rescale`.
    pub fn pt_mult(&self, ell: usize) -> Cost {
        self.pt_mult_no_rescale(ell) + self.rescale(ell)
    }

    /// The full `KeySwitch` (Algorithm 3) on one polynomial at `ell`
    /// limbs: `Decomp`, β `ModUp`s, the inner product and two `ModDown`s.
    pub fn keyswitch(&self, ell: usize) -> Cost {
        let beta = self.params.beta_at(ell);
        let mut c = self.decomp(ell);
        for j in 0..beta {
            c += self.mod_up_digit(ell, self.digit_width(ell, j));
        }
        c += self.ksk_inner_product(ell, beta, true, true);
        c += self.mod_down(ell, self.params.special_limbs()) * 2;
        c
    }

    /// Limbs in digit `j` at limb count `ell`.
    pub fn digit_width(&self, ell: usize, j: usize) -> usize {
        let alpha = self.params.alpha();
        ((j + 1) * alpha).min(ell) - (j * alpha).min(ell)
    }

    /// `Mult` (Table 2): tensor, relinearize, rescale. With the ModDown
    /// merge (Figure 4c), the relinearization `ModDown` and the `Rescale`
    /// fuse into a single `ModDown` dropping `k + 1` limbs, saving
    /// roughly `ℓ` NTTs and one orientation switch.
    pub fn mult(&self, ell: usize) -> Cost {
        let l = ell as u64;
        let n = self.n();
        let limb = self.limb();
        // Tensor: d0, d1 (two products + add), d2 — 4 products, 1 add.
        let mut c = Cost {
            mults: 4 * n * l,
            adds: n * l,
            ct_read: 4 * l * limb,
            ct_write: 3 * l * limb,
            ..Cost::ZERO
        };
        let beta = self.params.beta_at(ell);
        c += self.decomp(ell);
        for j in 0..beta {
            c += self.mod_up_digit(ell, self.digit_width(ell, j));
        }
        c += self.ksk_inner_product(ell, beta, true, true);
        let k = self.params.special_limbs();
        if self.config.algo.moddown_merge {
            // PModUp lifts d0, d1 for free (ℓ scalar mults each, fused),
            // then one merged ModDown per component drops k + 1 limbs.
            c += Cost::compute(2 * n * l, 0);
            c += Cost {
                ct_read: 2 * l * limb, // d0, d1 re-read into the merge
                ..Cost::ZERO
            };
            c += self.mod_down(ell - 1, k + 1) * 2;
        } else {
            c += self.mod_down(ell, k) * 2;
            // Add (v, u) into (d0, d1): read both, write both.
            c += Cost {
                adds: 2 * n * l,
                ct_read: 4 * l * limb,
                ct_write: 2 * l * limb,
                ..Cost::ZERO
            };
            c += self.rescale(ell);
        }
        c
    }

    /// `Rotate`/`Conjugate` (Table 2): automorphism + `KeySwitch` + the
    /// final addition of `σ(c_0)`.
    pub fn rotate(&self, ell: usize) -> Cost {
        let l = ell as u64;
        let limb = self.limb();
        // The automorphism on c1 fuses into the Decomp/iNTT pass under
        // O(1)-limb caching (the paper's Figure 1 worked example); on c0
        // it fuses into the final addition.
        let mut c = self.automorph(ell, false);
        c += self.keyswitch(ell);
        c += Cost {
            adds: self.n() * l,
            ct_read: 2 * l * limb, // σ(c0) + v
            ct_write: l * limb,
            ..Cost::ZERO
        };
        c
    }

    /// The limb reads+writes of the Figure-1 worked example: the
    /// pre-`NewLimb` phase of `Rotate` (Automorph, Decomp, iNTT) over a
    /// single polynomial of `ell` limbs. Naive: three passes; O(1)-limb:
    /// one fused pass.
    pub fn rotate_prefix_limb_accesses(&self, ell: usize) -> (u64, u64) {
        let passes = if self.fused() { 1 } else { 3 };
        (passes * ell as u64, passes * ell as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opts::AlgoOpts;

    fn model(caching: CachingLevel) -> CostModel {
        CostModel::new(
            SchemeParams::baseline(),
            MadConfig {
                caching,
                algo: AlgoOpts {
                    modup_hoist: true,
                    ..AlgoOpts::none()
                },
            },
        )
    }

    fn gops(c: Cost) -> f64 {
        c.ops() as f64 / 1e9
    }

    fn gb(c: Cost) -> f64 {
        c.dram_total() as f64 / 1e9
    }

    fn assert_within(got: f64, want: f64, tol: f64, what: &str) {
        assert!(
            (got / want - 1.0).abs() < tol,
            "{what}: got {got:.4}, paper reports {want:.4} ({:+.1}%)",
            (got / want - 1.0) * 100.0
        );
    }

    // ===== Calibration against Table 4 (ℓ = 35, dnum = 3, small cache) ===

    #[test]
    fn table4_pt_add() {
        let m = model(CachingLevel::OneLimb);
        let c = m.pt_add(35);
        assert_within(gops(c), 0.0046, 0.02, "PtAdd ops");
        assert_within(gb(c), 0.1101, 0.02, "PtAdd DRAM");
    }

    #[test]
    fn table4_add() {
        let m = model(CachingLevel::OneLimb);
        let c = m.add(35);
        assert_within(gops(c), 0.0092, 0.02, "Add ops");
        assert_within(gb(c), 0.2202, 0.02, "Add DRAM");
    }

    #[test]
    fn table4_pt_mult() {
        let m = model(CachingLevel::OneLimb);
        let c = m.pt_mult(35);
        assert_within(gops(c), 0.2747, 0.10, "PtMult ops");
        assert_within(gb(c), 0.3282, 0.10, "PtMult DRAM");
    }

    #[test]
    fn table4_decomp() {
        let m = model(CachingLevel::Baseline);
        let c = m.decomp(35);
        assert_within(gops(c), 0.0092, 0.02, "Decomp ops");
        assert_within(gb(c), 0.0734, 0.02, "Decomp DRAM");
    }

    #[test]
    fn table4_mod_up() {
        let m = model(CachingLevel::OneLimb);
        let c = m.mod_up_digit(35, 12);
        assert_within(gops(c), 0.2847, 0.10, "ModUp ops");
        assert_within(gb(c), 0.1510, 0.10, "ModUp DRAM");
    }

    #[test]
    fn table4_ksk_inner_product() {
        let m = model(CachingLevel::OneLimb);
        let c = m.ksk_inner_product(35, 3, true, true);
        assert_within(gops(c), 0.0629, 0.05, "KSKInnerProd ops");
        assert_within(gb(c), 0.4530, 0.20, "KSKInnerProd DRAM");
    }

    #[test]
    fn table4_mod_down() {
        let m = model(CachingLevel::OneLimb);
        let c = m.mod_down(35, 12);
        assert_within(gops(c), 0.3000, 0.10, "ModDown ops");
        assert_within(gb(c), 0.1877, 0.10, "ModDown DRAM");
    }

    #[test]
    fn table4_mult() {
        let m = model(CachingLevel::OneLimb);
        let c = m.mult(35);
        assert_within(gops(c), 1.8333, 0.10, "Mult ops");
        assert_within(gb(c), 1.9293, 0.10, "Mult DRAM");
    }

    #[test]
    fn table4_automorph() {
        let m = model(CachingLevel::OneLimb);
        let c = m.automorph(35, true);
        assert_eq!(c.ops(), 0);
        assert_within(gb(c), 0.1468, 0.02, "Automorph DRAM");
    }

    #[test]
    fn table4_rotate() {
        let m = model(CachingLevel::OneLimb);
        let c = m.rotate(35);
        assert_within(gops(c), 1.5310, 0.10, "Rotate ops");
        assert_within(gb(c), 1.5645, 0.15, "Rotate DRAM");
    }

    // ===== Structural properties =====

    #[test]
    fn figure1_rotate_worked_example() {
        // Naive: 105 reads + 105 writes; O(1)-limb: 35 + 35 (Figure 1).
        let naive = model(CachingLevel::Baseline);
        assert_eq!(naive.rotate_prefix_limb_accesses(35), (105, 105));
        let fused = model(CachingLevel::OneLimb);
        assert_eq!(fused.rotate_prefix_limb_accesses(35), (35, 35));
    }

    #[test]
    fn caching_never_increases_traffic() {
        let mut last = u64::MAX;
        for lvl in CachingLevel::ALL {
            let m = model(lvl);
            let total = m.mult(35).dram_total() + m.rotate(35).dram_total();
            assert!(total <= last, "{lvl} increased traffic");
            last = total;
        }
    }

    #[test]
    fn caching_preserves_compute() {
        // §3.1: "the caching optimizations do not impact the number of
        // operations".
        let base_ops = model(CachingLevel::Baseline).rotate(35).ops();
        for lvl in CachingLevel::ALL {
            assert_eq!(model(lvl).rotate(35).ops(), base_ops, "{lvl}");
        }
    }

    #[test]
    fn moddown_merge_reduces_compute_and_switches() {
        let p = SchemeParams::baseline();
        let plain = CostModel::new(
            p,
            MadConfig {
                caching: CachingLevel::LimbReorder,
                algo: AlgoOpts {
                    modup_hoist: true,
                    ..AlgoOpts::none()
                },
            },
        );
        let merged = CostModel::new(
            p,
            MadConfig {
                caching: CachingLevel::LimbReorder,
                algo: AlgoOpts {
                    modup_hoist: true,
                    moddown_merge: true,
                    ..AlgoOpts::none()
                },
            },
        );
        let a = plain.mult(35);
        let b = merged.mult(35);
        assert!(b.ops() < a.ops(), "merge must reduce compute");
        // The saving is in the right ballpark: one ModDown's worth of NTTs.
        let saving = (a.ops() - b.ops()) as f64 / a.ops() as f64;
        assert!(saving > 0.05 && saving < 0.35, "saving {saving}");
    }

    #[test]
    fn key_compression_halves_key_reads() {
        let p = SchemeParams::baseline();
        let plain = CostModel::new(p, MadConfig::baseline());
        let compressed = CostModel::new(
            p,
            MadConfig {
                caching: CachingLevel::Baseline,
                algo: AlgoOpts {
                    modup_hoist: true,
                    key_compression: true,
                    ..AlgoOpts::none()
                },
            },
        );
        let a = plain.keyswitch(35);
        let b = compressed.keyswitch(35);
        assert_eq!(b.key_read * 2, a.key_read);
        assert_eq!(b.ops(), a.ops());
    }

    #[test]
    fn digit_widths_tile_level() {
        let m = model(CachingLevel::Baseline);
        // ℓ = 35, α = 12 → digits of 12, 12, 11.
        assert_eq!(m.digit_width(35, 0), 12);
        assert_eq!(m.digit_width(35, 1), 12);
        assert_eq!(m.digit_width(35, 2), 11);
        let total: usize = (0..3).map(|j| m.digit_width(35, j)).sum();
        assert_eq!(total, 35);
    }
}
