//! Property-based tests of the SimFHE cost model: invariants that must
//! hold for *every* parameter point, not just the paper's.

use proptest::prelude::*;
use simfhe::{AlgoOpts, CachingLevel, Cost, CostModel, HardwareConfig, MadConfig, SchemeParams};

fn params_strategy() -> impl Strategy<Value = SchemeParams> {
    (13u32..=17, 30u32..=60, 20usize..=45, 1usize..=5, 1usize..=6).prop_map(
        |(log_n, log_q, limbs, dnum, fft_iter)| SchemeParams {
            log_n,
            log_q,
            limbs,
            dnum: dnum.min(limbs),
            fft_iter,
        },
    )
}

fn algo_strategy() -> impl Strategy<Value = AlgoOpts> {
    (any::<bool>(), any::<bool>(), any::<bool>(), any::<bool>()).prop_map(
        |(moddown_merge, moddown_hoist, modup_hoist, key_compression)| AlgoOpts {
            moddown_merge,
            moddown_hoist,
            modup_hoist,
            key_compression,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn digits_always_tile_the_level(p in params_strategy(), ell_frac in 0.1f64..1.0) {
        let ell = ((p.limbs as f64 * ell_frac) as usize).max(1);
        let model = CostModel::new(p, MadConfig::baseline());
        let beta = ell.div_ceil(p.alpha());
        let covered: usize = (0..beta).map(|j| model.digit_width(ell, j)).sum();
        prop_assert_eq!(covered, ell);
        prop_assert!(p.beta_at(ell) <= p.dnum + 1);
    }

    #[test]
    fn caching_ladder_is_monotone_for_all_params(p in params_strategy(), algo in algo_strategy()) {
        let ell = p.limbs.max(2);
        let mut last_dram = u64::MAX;
        let mut ops: Option<u64> = None;
        for lvl in CachingLevel::ALL {
            let model = CostModel::new(p, MadConfig { caching: lvl, algo });
            let c = model.mult(ell) + model.rotate(ell) + model.rescale(ell);
            prop_assert!(c.dram_total() <= last_dram, "{lvl} increased traffic");
            last_dram = c.dram_total();
            // Caching never changes compute (§3.1).
            match ops {
                None => ops = Some(c.ops()),
                Some(o) => prop_assert_eq!(c.ops(), o),
            }
        }
    }

    #[test]
    fn key_compression_halves_keys_and_nothing_else(
        p in params_strategy(),
        caching in prop::sample::select(CachingLevel::ALL.to_vec()),
    ) {
        let ell = p.limbs.max(2);
        let base = AlgoOpts { key_compression: false, ..AlgoOpts::all() };
        let compressed = AlgoOpts::all();
        let a = CostModel::new(p, MadConfig { caching, algo: base }).rotate(ell);
        let b = CostModel::new(p, MadConfig { caching, algo: compressed }).rotate(ell);
        prop_assert_eq!(b.key_read * 2, a.key_read);
        prop_assert_eq!(a.ops(), b.ops());
        prop_assert_eq!(a.ct_read, b.ct_read);
        prop_assert_eq!(a.ct_write, b.ct_write);
    }

    #[test]
    fn moddown_merge_always_reduces_mult_compute(p in params_strategy()) {
        prop_assume!(p.limbs >= 2);
        let ell = p.limbs;
        let without = AlgoOpts { moddown_merge: false, ..AlgoOpts::all() };
        let a = CostModel::new(p, MadConfig { caching: CachingLevel::LimbReorder, algo: without })
            .mult(ell);
        let b = CostModel::new(p, MadConfig::all()).mult(ell);
        prop_assert!(b.ops() < a.ops());
    }

    #[test]
    fn bootstrap_level_accounting(p in params_strategy()) {
        let consumed = 2 * p.fft_iter + 2 + simfhe::bootstrap::EVAL_MOD_DEPTH;
        prop_assume!(p.limbs > consumed);
        prop_assume!(p.fft_iter <= (p.log_n - 1) as usize);
        let b = CostModel::new(p, MadConfig::all()).bootstrap();
        prop_assert_eq!(b.levels_consumed, consumed);
        prop_assert_eq!(b.output_limbs, p.limbs - consumed);
        prop_assert_eq!(b.log_q1, (b.output_limbs as u32) * p.log_q);
        prop_assert!(b.cost.ops() > 0 && b.cost.dram_total() > 0);
    }

    #[test]
    fn costs_scale_linearly(p in params_strategy(), k in 1u64..50) {
        let model = CostModel::new(p, MadConfig::baseline());
        let one = model.add(p.limbs);
        let many = one * k;
        prop_assert_eq!(many.ops(), one.ops() * k);
        prop_assert_eq!(many.dram_total(), one.dram_total() * k);
        let sum: Cost = std::iter::repeat_n(one, k as usize).sum();
        prop_assert_eq!(sum, many);
    }

    #[test]
    fn roofline_is_max_of_components(
        mults in 1u64..u64::MAX / 4,
        bytes in 1u64..u64::MAX / 4,
    ) {
        let hw = HardwareConfig::gpu();
        let c = Cost { mults, ct_read: bytes, ..Cost::ZERO };
        let r = hw.runtime_seconds(&c);
        prop_assert!(r >= hw.compute_seconds(&c) - f64::EPSILON);
        prop_assert!(r >= hw.memory_seconds(&c) - f64::EPSILON);
        prop_assert!(
            (r - hw.compute_seconds(&c)).abs() < 1e-12 * r
                || (r - hw.memory_seconds(&c)).abs() < 1e-12 * r
        );
    }

    #[test]
    fn best_cache_level_never_exceeds_budget(cache_mb in 0.5f64..600.0) {
        let p = SchemeParams::baseline();
        let lvl = CachingLevel::best_for_cache(
            cache_mb,
            p.alpha(),
            p.beta_at(p.limbs),
            p.limb_mib(),
        );
        prop_assert!(lvl.min_cache_mb(p.alpha(), p.beta_at(p.limbs), p.limb_mib()) <= cache_mb
            || lvl == CachingLevel::Baseline);
    }

    #[test]
    fn security_check_is_monotone_in_depth(p in params_strategy()) {
        if p.is_secure_128() {
            let shallower = SchemeParams { limbs: p.limbs.saturating_sub(1).max(1), ..p };
            prop_assert!(shallower.is_secure_128());
        }
    }

    #[test]
    fn more_bandwidth_never_slows_a_workload(
        p in params_strategy(),
        extra in 1.0f64..10.0,
    ) {
        let model = CostModel::new(p, MadConfig::baseline());
        let c = model.rotate(p.limbs);
        let hw = HardwareConfig::gpu();
        let faster = HardwareConfig { bandwidth_gbps: hw.bandwidth_gbps * extra, ..hw };
        prop_assert!(faster.runtime_seconds(&c) <= hw.runtime_seconds(&c) + f64::EPSILON);
    }
}
