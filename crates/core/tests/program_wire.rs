//! Property-based tests of the encrypted-program wire format (`MADP`):
//! encode/decode round-trips exactly, and every adversarial mutation —
//! truncation at any byte, a bit flip anywhere, garbage appended to a
//! valid body — yields a structured [`WireError`], never a panic.

use proptest::prelude::*;
use simfhe::program::{CtDecl, Instr, MatDecl, Program, PtDecl};

/// A wire-well-formed (not necessarily semantically valid) program built
/// from a flat list of instruction seeds. The wire layer must round-trip
/// *any* structurally sound program, including ones `validate()` would
/// reject.
fn program_from_seeds(seeds: &[(u8, u8, u8, i32, i32)]) -> Program {
    let reg = |i: u8| format!("r{}", i % 6);
    let instrs: Vec<Instr> = seeds
        .iter()
        .enumerate()
        .map(|(k, &(op, a, b, steps, val))| {
            let dst = format!("d{k}");
            let (a, b) = (reg(a), reg(b));
            let value = f64::from(val) / 64.0;
            match op % 10 {
                0 => Instr::Add { dst, a, b },
                1 => Instr::Sub { dst, a, b },
                2 => Instr::PtMult {
                    dst,
                    a,
                    pt: "p0".into(),
                },
                3 => Instr::MulConst { dst, a, value },
                4 => Instr::AddConst { dst, a, value },
                5 => Instr::Mult { dst, a, b },
                6 => Instr::Rotate {
                    dst,
                    a,
                    steps: i64::from(steps),
                },
                7 => Instr::Rescale { dst, a },
                8 => Instr::BsgsMatVec {
                    dst,
                    a,
                    mat: "m0".into(),
                },
                _ => Instr::Bootstrap {
                    dst,
                    a,
                    to_level: (steps.unsigned_abs() as usize % 40) + 1,
                },
            }
        })
        .collect();
    Program {
        name: "fuzz".into(),
        ct_inputs: (0..3)
            .map(|i| CtDecl {
                name: format!("r{i}"),
                level: i + 2,
            })
            .collect(),
        pt_inputs: vec![PtDecl { name: "p0".into() }],
        matrices: vec![MatDecl {
            name: "m0".into(),
            slots: 16,
            offsets: vec![0, 1, 5],
        }],
        instrs,
        outputs: vec!["r0".into()],
    }
}

fn seed_strategy() -> impl Strategy<Value = Vec<(u8, u8, u8, i32, i32)>> {
    prop::collection::vec(
        (
            any::<u8>(),
            any::<u8>(),
            any::<u8>(),
            -64i32..=64,
            -512i32..=512,
        ),
        0..12,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn wire_round_trips_exactly(seeds in seed_strategy()) {
        let prog = program_from_seeds(&seeds);
        let bytes = prog.to_bytes();
        let back = Program::from_bytes(&bytes).expect("own encoding decodes");
        prop_assert_eq!(back, prog);
    }

    #[test]
    fn every_truncation_is_a_structured_error(seeds in seed_strategy()) {
        let bytes = program_from_seeds(&seeds).to_bytes();
        for cut in 0..bytes.len() {
            prop_assert!(
                Program::from_bytes(&bytes[..cut]).is_err(),
                "prefix of {cut}/{} bytes decoded",
                bytes.len()
            );
        }
    }

    #[test]
    fn bit_flips_never_panic(seeds in seed_strategy(), pos in any::<u16>(), bit in 0u8..8) {
        let mut bytes = program_from_seeds(&seeds).to_bytes();
        let idx = pos as usize % bytes.len();
        bytes[idx] ^= 1 << bit;
        // A flip may still decode (e.g. in a scalar payload); whatever
        // comes back must itself re-encode and round-trip byte-stably
        // (byte comparison, since a flip can forge a NaN scalar).
        if let Ok(mutated) = Program::from_bytes(&bytes) {
            let re = mutated.to_bytes();
            let back = Program::from_bytes(&re).expect("re-encoding decodes");
            prop_assert_eq!(back.to_bytes(), re);
        }
    }

    #[test]
    fn garbage_tails_are_rejected(seeds in seed_strategy(), tail in prop::collection::vec(any::<u8>(), 1..32)) {
        let mut bytes = program_from_seeds(&seeds).to_bytes();
        bytes.extend_from_slice(&tail);
        prop_assert!(Program::from_bytes(&bytes).is_err());
    }
}
