//! End-to-end check of the memory-trace pipeline (`--features trace`):
//! captures the real kernels' limb touches, replays them through the
//! cache simulator at the committed gate configuration, and asserts the
//! measured DRAM bytes stay within the committed tolerances — the same
//! gate the CI `trace-validation` job runs via `simfhe trace`.

#![cfg(feature = "trace")]

use std::sync::Mutex;

use simfhe::capture::{
    capture_trace as capture_trace_raw, default_gate_config, run_sweep, run_trace_validation,
    DEFAULT_TOLERANCES,
};
use simfhe::trace::{chrome_trace_json, split_top_level, TraceEvent};
use simfhe::validate::Tolerances;

/// The telemetry trace buffer is process-global, so concurrent captures
/// from the test harness's worker threads would interleave; serialize
/// them.
static CAPTURE_LOCK: Mutex<()> = Mutex::new(());

fn capture_trace() -> Vec<TraceEvent> {
    let _guard = CAPTURE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    capture_trace_raw()
}

#[test]
fn replayed_dram_bytes_match_model_within_committed_tolerances() {
    let events = capture_trace();
    let report = run_trace_validation(&events, &default_gate_config());
    let tol = Tolerances::parse(DEFAULT_TOLERANCES).expect("committed tolerances parse");
    let violations = report.evaluate(&tol);
    assert!(
        violations.is_empty(),
        "cache-replayed DRAM bytes drifted from the model:\n{}",
        violations
            .iter()
            .map(|v| format!("  {}/{}: {}", v.primitive, v.metric, v.reason))
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Every Table-2 primitive the issue gates on must be present.
    let names: Vec<&str> = report.primitives.iter().map(|p| p.name.as_str()).collect();
    for expected in [
        "Add",
        "PtAdd",
        "PtMult",
        "Rescale",
        "PModUp",
        "KeySwitch",
        "Rotate",
        "Mult",
        "MultMerged",
        "BsgsMatVec",
        "HelrMicro",
        "ResNetMicro",
    ] {
        assert!(names.contains(&expected), "missing primitive {expected}");
    }
}

#[test]
fn capture_is_deterministic() {
    // The gate must be stable run-to-run or CI would flake. Raw events
    // are not literally comparable (operand ids come from a global
    // counter and span timestamps are wall-clock), so compare what the
    // gate actually consumes: the replayed per-segment traffic.
    let measure = |events: &[TraceEvent]| -> Vec<(String, u64, u64)> {
        split_top_level(events)
            .iter()
            .map(|(name, seg)| {
                let s = simfhe::trace::replay(seg, &default_gate_config());
                (name.clone(), s.dram_read(), s.dram_write())
            })
            .collect()
    };
    assert_eq!(measure(&capture_trace()), measure(&capture_trace()));
}

#[test]
fn perfetto_export_has_balanced_spans_and_counter_track() {
    let events = capture_trace();
    let json = chrome_trace_json(&events);
    let begins = json.matches("\"ph\": \"B\"").count();
    let ends = json.matches("\"ph\": \"E\"").count();
    assert!(begins > 0, "no spans exported");
    assert_eq!(begins, ends, "unbalanced B/E span events");
    assert!(
        json.matches("\"ph\": \"C\"").count() > 0,
        "no counter track"
    );
    assert!(json.contains("\"displayTimeUnit\""));
    // Cheap structural sanity in place of a JSON parser: balanced
    // braces/brackets and no trailing comma before a closing bracket.
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());
    assert!(!json.contains(",\n]"));
}

#[test]
fn sweep_covers_all_sizes_and_larger_caches_never_cost_more() {
    let events = capture_trace();
    let rows = run_sweep(&events);
    assert_eq!(rows.len(), 36, "6 primitives x 6 cache sizes");
    // For a fixed primitive, measured DRAM traffic is non-increasing in
    // cache size (LRU with pinning has no Belady anomaly here because
    // capacities are nested and the trace is identical).
    for name in ["Add", "PtMult", "Rescale", "KeySwitch", "Rotate", "Mult"] {
        let series: Vec<u64> = rows
            .iter()
            .filter(|r| r.primitive == name)
            .map(|r| r.measured_bytes)
            .collect();
        assert_eq!(series.len(), 6);
        for w in series.windows(2) {
            assert!(
                w[1] <= w[0],
                "{name}: measured bytes grew with cache size: {series:?}"
            );
        }
    }
}

#[test]
fn trace_segments_cover_every_gated_primitive_once() {
    let events = capture_trace();
    let segments = split_top_level(&events);
    assert_eq!(segments.len(), 12);
    let mut names: Vec<&str> = segments.iter().map(|(n, _)| n.as_str()).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), 12, "duplicate top-level span names");
}
